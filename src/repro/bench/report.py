"""Plain-text table rendering and benchmark result files."""

from __future__ import annotations

import json
import os
from typing import List, Optional, Sequence

#: Results are written here by every benchmark module so the paper-style
#: tables survive pytest's output capturing.
RESULTS_DIR = os.environ.get(
    "REPRO_RESULTS_DIR",
    os.path.join(os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))))), "benchmarks", "results"),
)


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], title: str = ""
) -> str:
    """Fixed-width table with a rule under the header."""
    cells = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_bars(
    pairs: Sequence[tuple],
    title: str = "",
    width: int = 48,
    unit: str = "",
) -> str:
    """Horizontal ASCII bar chart — a text-mode stand-in for the paper's
    figures.  ``pairs`` is ``[(label, value), ...]``; bars are scaled to
    the maximum value."""
    if not pairs:
        raise ValueError("nothing to chart")
    labels = [str(label) for label, _ in pairs]
    values = [float(v) for _, v in pairs]
    peak = max(values)
    if peak <= 0:
        raise ValueError("need at least one positive value")
    label_w = max(len(s) for s in labels)
    lines: List[str] = []
    if title:
        lines.append(title)
    for label, value in zip(labels, values):
        bar = "#" * max(1, round(value / peak * width))
        lines.append(f"{label.ljust(label_w)}  {bar} {value:g}{unit}")
    return "\n".join(lines)


def write_result(name: str, text: str, data: Optional[dict] = None) -> str:
    """Persist a rendered table under ``benchmarks/results/`` and echo it.

    With ``data``, the raw numbers are also written as ``{name}.json``
    with sorted keys — committed result files must diff byte-identically
    no matter which ``--jobs`` worker finished first, so every dict is
    serialised in key order rather than insertion order.
    """
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    with open(path, "w") as f:
        f.write(text + "\n")
    if data is not None:
        json_path = os.path.join(RESULTS_DIR, f"{name}.json")
        with open(json_path, "w") as f:
            json.dump(data, f, indent=2, sort_keys=True)
            f.write("\n")
    print(f"\n{text}\n[saved to {path}]")
    return path
