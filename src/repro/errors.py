"""Exception types shared across the library."""


class ReproError(Exception):
    """Base class for all library errors."""


class UnsupportedOperationError(ReproError):
    """The index does not support the requested operation.

    Raised e.g. when inserting into a read-only learned index (RMI,
    RadixSpline) or range-scanning a hash index (CCEH).
    """


class KeyNotFoundError(ReproError):
    """A key required to exist was absent (update/delete of missing key)."""


class EmptyIndexError(ReproError):
    """The operation requires a non-empty index."""


class InvalidConfigurationError(ReproError):
    """An index or model was configured with invalid parameters."""


class InvalidKeysError(ReproError):
    """A fit/build received keys it cannot model (NaN, unsorted, dupes)."""


class WorkerDiedError(ReproError):
    """A shard worker process died mid-operation (parallel engine).

    Raised by :mod:`repro.concurrency.parallel` when a worker exits (or
    its pipe breaks) while the parent is waiting on a reply, so a killed
    worker surfaces as a descriptive error instead of a hung gather.

    Carries the postmortem context the parent had at death time:
    ``worker_id``, ``pid``, ``exitcode``, and ``flight`` — the dead
    worker's flight-recorder ring (last N commands, see
    :class:`repro.obs.health.HealthMonitor`) — plus the retry metadata
    of the supervision layer (:mod:`repro.concurrency.supervise`):
    ``restarts`` (recovery attempts spent on this worker) and
    ``restart_budget`` (attempts it was allowed).
    """

    def __init__(
        self,
        message: str,
        worker_id: int = None,
        pid: int = None,
        exitcode: int = None,
        flight: list = None,
        restarts: int = 0,
        restart_budget: int = 0,
    ):
        super().__init__(message)
        self.worker_id = worker_id
        self.pid = pid
        self.exitcode = exitcode
        self.flight = list(flight or [])
        self.restarts = restarts
        self.restart_budget = restart_budget


class ShardUnavailableError(ReproError):
    """A range partition is being served degraded (parallel engine).

    Raised under ``degraded="partial"`` when a worker exhausted its
    restart budget and an operation *requires* the lost shard: any
    write routed to it (dropping writes silently would corrupt the
    caller's view of its own data), or a bulk load while a shard is
    down.  Reads degrade instead: batched gets answer ``None`` for
    keys on the lost shard, scans skip its range, and every skipped
    operation increments the ``repro_shard_unavailable_total`` metric.
    """

    def __init__(self, message: str, worker_id: int = None, lost_ops: int = 0):
        super().__init__(message)
        self.worker_id = worker_id
        self.lost_ops = lost_ops


class DeviceError(ReproError):
    """Simulated persistent-memory device error (out of space, bad offset)."""


class CrashedError(ReproError):
    """The store is in a crashed state and must be recovered first."""
