"""Exception types shared across the library."""


class ReproError(Exception):
    """Base class for all library errors."""


class UnsupportedOperationError(ReproError):
    """The index does not support the requested operation.

    Raised e.g. when inserting into a read-only learned index (RMI,
    RadixSpline) or range-scanning a hash index (CCEH).
    """


class KeyNotFoundError(ReproError):
    """A key required to exist was absent (update/delete of missing key)."""


class EmptyIndexError(ReproError):
    """The operation requires a non-empty index."""


class InvalidConfigurationError(ReproError):
    """An index or model was configured with invalid parameters."""


class InvalidKeysError(ReproError):
    """A fit/build received keys it cannot model (NaN, unsorted, dupes)."""


class WorkerDiedError(ReproError):
    """A shard worker process died mid-operation (parallel engine).

    Raised by :mod:`repro.concurrency.parallel` when a worker exits (or
    its pipe breaks) while the parent is waiting on a reply, so a killed
    worker surfaces as a descriptive error instead of a hung gather.

    Carries the postmortem context the parent had at death time:
    ``worker_id``, ``pid``, ``exitcode``, and ``flight`` — the dead
    worker's flight-recorder ring (last N commands, see
    :class:`repro.obs.health.HealthMonitor`).
    """

    def __init__(
        self,
        message: str,
        worker_id: int = None,
        pid: int = None,
        exitcode: int = None,
        flight: list = None,
    ):
        super().__init__(message)
        self.worker_id = worker_id
        self.pid = pid
        self.exitcode = exitcode
        self.flight = list(flight or [])


class DeviceError(ReproError):
    """Simulated persistent-memory device error (out of space, bad offset)."""


class CrashedError(ReproError):
    """The store is in a crashed state and must be recovered first."""
