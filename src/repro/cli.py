"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``info`` — list every registered index with its category, figure
  membership, and Table-I capabilities.
* ``bench`` — run one (index, workload, dataset) combination end-to-end
  through the Viper store and print simulated throughput/latency.
* ``datasets`` — summarise a synthetic dataset (and optionally dump keys).

Index resolution goes through :mod:`repro.registry`: any canonical name
or alias listed by ``info`` works, case-insensitively.
"""

from __future__ import annotations

import argparse
import random
import sys

from repro import PerfContext, ViperStore, registry
from repro.bench import format_table, run_store_ops
from repro.obs import (
    EventType,
    JsonlTraceSink,
    MetricsRegistry,
    ProgressReporter,
    Tracer,
    prometheus_text,
    trace_summary,
)
from repro.perf import Profiler
from repro.registry import UnknownIndexError
from repro.workloads import generate_operations
from repro.workloads.datasets import DATASETS
from repro.workloads.ycsb import (
    READ_ONLY,
    STANDARD_WORKLOADS,
    WRITE_ONLY,
    split_load_and_inserts,
)

#: CLI name -> spec, generated from the registry (kept importable for
#: anything that wants "every index the CLI can drive"; an
#: :class:`~repro.registry.IndexSpec` is callable as ``spec(perf)``).
INDEXES = {spec.cli_name: spec for spec in registry.specs()}

WORKLOADS = {
    **{name.lower(): spec for name, spec in STANDARD_WORKLOADS.items()},
    "read-only": READ_ONLY,
    "write-only": WRITE_ONLY,
}


def cmd_info(_args: argparse.Namespace) -> int:
    rows = []
    for spec in registry.specs():
        caps = spec.build(PerfContext()).capabilities()
        rows.append(
            [
                spec.cli_name,
                spec.category,
                ",".join(spec.figures) or "-",
                "yes" if caps.sorted_order else "no",
                "yes" if caps.updatable else "no",
                "bounded" if caps.bounded_error else "unfixed",
                caps.inner_node or "-",
                caps.insertion or "-",
            ]
        )
    print(
        format_table(
            [
                "index",
                "category",
                "figures",
                "sorted",
                "updatable",
                "error",
                "inner node",
                "insertion",
            ],
            rows,
            title="Available indexes",
        )
    )
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    try:
        spec = registry.resolve(args.index)
    except UnknownIndexError:
        print(f"unknown index {args.index!r}; see `info`", file=sys.stderr)
        return 2
    if args.workload not in WORKLOADS:
        print(
            f"unknown workload {args.workload!r}; "
            f"one of {sorted(WORKLOADS)}",
            file=sys.stderr,
        )
        return 2
    workload = WORKLOADS[args.workload]
    keys = DATASETS[args.dataset](args.keys, seed=args.seed)
    needs_inserts = workload.insert > 0
    if needs_inserts:
        load, insert_pool = split_load_and_inserts(keys, 0.5, seed=args.seed)
    else:
        load, insert_pool = list(keys), None
    ops = generate_operations(
        workload, args.ops, load, insert_pool, seed=args.seed
    )

    perf = PerfContext()
    store = ViperStore(spec.build(perf), perf)
    mark = perf.begin()
    store.bulk_load([(k, k) for k in load])
    build_ns = perf.end(mark).time_ns
    progress = (
        ProgressReporter(total=len(ops), every=max(1, len(ops) // 20))
        if args.progress
        else None
    )
    recorder, bytes_per_op = run_store_ops(
        store, ops, perf, batch_size=args.batch_size, progress=progress
    )

    print(
        format_table(
            ["metric", "value"],
            [
                ["index", spec.name],
                ["workload", workload.name],
                ["batch size", args.batch_size],
                ["dataset", f"{args.dataset} ({len(load):,} loaded keys)"],
                ["operations", f"{len(recorder):,}"],
                ["build (sim ms)", f"{build_ns / 1e6:.2f}"],
                ["throughput (sim Mops/s)", f"{recorder.throughput_mops():.3f}"],
                ["mean latency (sim ns)", f"{recorder.mean():.0f}"],
                ["p50 (sim ns)", f"{recorder.p50():.0f}"],
                ["p99.9 (sim ns)", f"{recorder.p999():.0f}"],
                ["bytes/op", f"{bytes_per_op:.0f}"],
            ],
            title="Benchmark result (simulated hardware)",
        )
    )
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    """Run one combination with full observability and print the report."""
    try:
        spec = registry.resolve(args.index)
    except UnknownIndexError:
        print(f"unknown index {args.index!r}; see `info`", file=sys.stderr)
        return 2
    if args.workload not in WORKLOADS:
        print(
            f"unknown workload {args.workload!r}; "
            f"one of {sorted(WORKLOADS)}",
            file=sys.stderr,
        )
        return 2
    workload = WORKLOADS[args.workload]
    keys = DATASETS[args.dataset](args.keys, seed=args.seed)
    if workload.insert > 0:
        load, insert_pool = split_load_and_inserts(keys, 0.5, seed=args.seed)
    else:
        load, insert_pool = list(keys), None
    ops = generate_operations(
        workload, args.ops, load, insert_pool, seed=args.seed
    )

    perf = PerfContext()
    tracer = Tracer(rate=args.sample, seed=args.seed)
    perf.tracer = tracer
    sink = None
    if args.trace_out:
        sink = JsonlTraceSink(open(args.trace_out, "w"))
        tracer.add_sink(sink)
    metrics = MetricsRegistry()
    profiler = Profiler(perf)
    progress = (
        ProgressReporter(total=len(ops), every=max(1, len(ops) // 20))
        if args.progress
        else None
    )

    store = ViperStore(spec.build(perf), perf)
    mark = perf.begin()
    store.bulk_load([(k, k) for k in load])
    build_ns = perf.end(mark).time_ns
    result = run_store_ops(
        store,
        ops,
        perf,
        profiler=profiler,
        batch_size=args.batch_size,
        metrics=metrics,
        progress=progress,
    )
    if sink is not None:
        sink.close()
    recorder = result.recorder

    print(
        format_table(
            ["metric", "value"],
            [
                ["index", spec.name],
                ["workload", workload.name],
                ["dataset", f"{args.dataset} ({len(load):,} loaded keys)"],
                ["operations", f"{len(recorder):,}"],
                ["trace sampling", f"{args.sample:g}"],
                ["build (sim ms)", f"{build_ns / 1e6:.2f}"],
                ["throughput (sim Mops/s)", f"{recorder.throughput_mops():.3f}"],
            ],
            title="Run (simulated hardware)",
        )
    )

    kind_rows = [
        [
            kind.value,
            f"{len(rec):,}",
            f"{rec.mean():.0f}",
            f"{rec.p50():.0f}",
            f"{rec.p99():.0f}",
            f"{rec.p999():.0f}",
        ]
        for kind, rec in sorted(
            result.by_kind.items(), key=lambda kv: -len(kv[1])
        )
    ]
    print()
    print(
        format_table(
            ["op kind", "ops", "mean ns", "p50 ns", "p99 ns", "p99.9 ns"],
            kind_rows,
            title="Latency by operation kind (histogram backend)",
        )
    )

    summary = trace_summary(tracer.records)
    event_rows = [
        [
            etype,
            f"{tracer.count(etype):,}",
            f"{summary.get(etype, {}).get('events', 0):,}",
            f"{summary.get(etype, {}).get('keys', 0):,}",
            f"{summary.get(etype, {}).get('cost_ns', 0.0) / 1e3:.1f}",
        ]
        for etype in EventType.ALL
        if tracer.count(etype)
    ]
    print()
    print(
        format_table(
            ["event", "emitted", "sampled", "keys", "cost (sim us)"],
            event_rows or [["(no lifecycle events)", "-", "-", "-", "-"]],
            title="Lifecycle events",
        )
    )

    stats = store.index.stats()
    print()
    print(
        format_table(
            ["stat", "value"],
            [
                ["leaf count", f"{stats.leaf_count:,}"],
                ["depth avg/max", f"{stats.depth_avg:.2f} / {stats.depth_max}"],
                ["retrains", f"{stats.retrain_count:,}"],
                ["retrained keys", f"{stats.retrain_keys:,}"],
                *[[k, f"{v:,}"] for k, v in sorted(stats.extra.items())],
            ],
            title=f"Index structure ({spec.name})",
        )
    )
    print()
    print(profiler.explain())

    if args.prom_out:
        with open(args.prom_out, "w") as fp:
            fp.write(prometheus_text(metrics, tracer))
        print(f"\nwrote Prometheus exposition to {args.prom_out}")
    if args.trace_out:
        print(f"wrote JSONL trace to {args.trace_out}")
    return 0


def cmd_datasets(args: argparse.Namespace) -> int:
    if args.name not in DATASETS:
        print(
            f"unknown dataset {args.name!r}; one of {sorted(DATASETS)}",
            file=sys.stderr,
        )
        return 2
    keys = DATASETS[args.name](args.n, seed=args.seed)
    if args.dump:
        for k in keys:
            print(k)
        return 0
    gaps = [b - a for a, b in zip(keys, keys[1:])]
    rng = random.Random(args.seed)
    print(
        format_table(
            ["property", "value"],
            [
                ["keys", f"{len(keys):,}"],
                ["min", keys[0]],
                ["max", keys[-1]],
                ["median gap", sorted(gaps)[len(gaps) // 2] if gaps else "-"],
                ["max gap", max(gaps) if gaps else "-"],
                ["sample", rng.choice(keys)],
            ],
            title=f"dataset {args.name!r}",
        )
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Learned-index reproduction toolkit "
        "(all performance numbers are simulated; see DESIGN.md).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="list indexes and capabilities")

    bench = sub.add_parser("bench", help="run one index/workload combination")
    bench.add_argument("--index", default="alex", help="index name (see info)")
    bench.add_argument(
        "--workload",
        default="ycsb-b",
        help=f"one of {sorted(WORKLOADS)}",
    )
    bench.add_argument(
        "--dataset", default="ycsb", choices=sorted(DATASETS), help="key set"
    )
    bench.add_argument("--keys", type=int, default=50_000)
    bench.add_argument("--ops", type=int, default=20_000)
    bench.add_argument("--seed", type=int, default=0)
    bench.add_argument(
        "--batch-size",
        type=int,
        default=1,
        help="group runs of consecutive reads into get_many batches and "
        "consecutive writes into put_many batches of this size "
        "(1 = per-key dispatch)",
    )
    bench.add_argument(
        "--progress",
        action="store_true",
        help="print live progress/throughput lines to stderr",
    )

    report = sub.add_parser(
        "report",
        help="run one combination with tracing/metrics and print a report",
    )
    report.add_argument("--index", default="alex", help="index name (see info)")
    report.add_argument(
        "--workload", default="ycsb-d", help=f"one of {sorted(WORKLOADS)}"
    )
    report.add_argument(
        "--dataset", default="ycsb", choices=sorted(DATASETS), help="key set"
    )
    report.add_argument("--keys", type=int, default=50_000)
    report.add_argument("--ops", type=int, default=20_000)
    report.add_argument("--seed", type=int, default=0)
    report.add_argument("--batch-size", type=int, default=1)
    report.add_argument(
        "--sample",
        type=float,
        default=1.0,
        help="lifecycle-trace sampling rate in [0, 1] "
        "(event counts stay exact at any rate)",
    )
    report.add_argument(
        "--trace-out", default="", help="write the sampled trace as JSONL"
    )
    report.add_argument(
        "--prom-out",
        default="",
        help="write Prometheus-style text exposition of the run's metrics",
    )
    report.add_argument(
        "--progress",
        action="store_true",
        help="print live progress/throughput lines to stderr",
    )

    ds = sub.add_parser("datasets", help="inspect a synthetic dataset")
    ds.add_argument("--name", default="ycsb")
    ds.add_argument("--n", type=int, default=10_000)
    ds.add_argument("--seed", type=int, default=0)
    ds.add_argument("--dump", action="store_true", help="print raw keys")

    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "info": cmd_info,
        "bench": cmd_bench,
        "report": cmd_report,
        "datasets": cmd_datasets,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
