"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``info`` — list every registered index with its category, figure
  membership, and Table-I capabilities.
* ``bench`` — run one (index, workload, dataset) combination end-to-end
  through the Viper store and print simulated throughput/latency.
* ``datasets`` — summarise a synthetic dataset (and optionally dump keys).

Index resolution goes through :mod:`repro.registry`: any canonical name
or alias listed by ``info`` works, case-insensitively.
"""

from __future__ import annotations

import argparse
import random
import sys
import time

from repro import PerfContext, ViperStore, registry
from repro.bench import format_table, run_store_ops, thread_scaling
from repro.concurrency import (
    ParallelShardedStore,
    ShardedStore,
    parallel_sharded_store,
)
from repro.concurrency.parallel import measure_scaling
from repro.obs import (
    EngineTopView,
    EventType,
    JsonlTraceSink,
    MetricsRegistry,
    ProgressReporter,
    SpanRecorder,
    Tracer,
    attribute_spans,
    prometheus_text,
    summarize_spans,
    trace_summary,
    write_chrome_trace,
    write_spans_jsonl,
)
from repro.perf import Profiler
from repro.registry import UnknownIndexError
from repro.workloads import generate_operations
from repro.workloads.datasets import DATASETS
from repro.workloads.ycsb import (
    READ_ONLY,
    STANDARD_WORKLOADS,
    WRITE_ONLY,
    split_load_and_inserts,
)

#: CLI name -> spec, generated from the registry (kept importable for
#: anything that wants "every index the CLI can drive"; an
#: :class:`~repro.registry.IndexSpec` is callable as ``spec(perf)``).
INDEXES = {spec.cli_name: spec for spec in registry.specs()}

WORKLOADS = {
    **{name.lower(): spec for name, spec in STANDARD_WORKLOADS.items()},
    "read-only": READ_ONLY,
    "write-only": WRITE_ONLY,
}


def cmd_info(_args: argparse.Namespace) -> int:
    rows = []
    for spec in registry.specs():
        caps = spec.build(PerfContext()).capabilities()
        rows.append(
            [
                spec.cli_name,
                spec.category,
                ",".join(spec.figures) or "-",
                "yes" if caps.sorted_order else "no",
                "yes" if caps.updatable else "no",
                "bounded" if caps.bounded_error else "unfixed",
                caps.inner_node or "-",
                caps.insertion or "-",
                spec.concurrency.describe(),
            ]
        )
    print(
        format_table(
            [
                "index",
                "category",
                "figures",
                "sorted",
                "updatable",
                "error",
                "inner node",
                "insertion",
                "concurrency",
            ],
            rows,
            title="Available indexes",
        )
    )
    return 0


def _parse_threads(text: str) -> list:
    """Parse ``--threads "1,8,32"`` into a sorted thread-count list.

    Doubles as the argparse ``type=`` so bad values fail at parse time,
    before the benchmark runs.
    """
    try:
        counts = sorted({int(part) for part in text.split(",") if part.strip()})
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected comma-separated integers, got {text!r}"
        ) from None
    if any(t < 1 for t in counts):
        raise argparse.ArgumentTypeError(
            f"thread counts must be >= 1, got {text!r}"
        )
    return counts


def _build_store(
    spec,
    perf,
    shards: int,
    workers: int = 1,
    trace_rate: float = 0.0,
    span_rate: float = 0.0,
    stall_threshold_s: float = 5.0,
    restart_budget: int = 0,
    worker_timeout_s=None,
    degraded: str = "fail",
):
    """One ViperStore, K in-process shards, or N worker processes.

    ``--workers N`` builds the process-parallel engine
    (:mod:`repro.concurrency.parallel`): N worker processes, each owning
    one range partition (``--shards K > N`` sub-shards inside workers).
    Simulated charges still land on ``perf`` — workers ship their
    counter deltas back with every reply — so the report below is
    unchanged; wall-clock rows are what the extra processes buy.
    ``span_rate > 0`` additionally records causal span trees
    (:mod:`repro.obs.spans`) across the parent and all workers.
    ``restart_budget``/``worker_timeout_s``/``degraded`` configure the
    supervision loop (:mod:`repro.concurrency.supervise`): dead or
    deadline-overrunning workers are respawned, rebuilt, and their
    in-flight command replayed up to the budget before the engine
    degrades.
    """
    if workers > 1:
        return parallel_sharded_store(
            spec,
            workers,
            shards=shards,
            perf=perf,
            trace_rate=trace_rate,
            span_rate=span_rate,
            stall_threshold_s=stall_threshold_s,
            restart_budget=restart_budget,
            worker_timeout_s=worker_timeout_s,
            degraded=degraded,
        )
    if shards > 1:
        return ShardedStore(spec.build, shards, perf=perf)
    return ViperStore(spec.build(perf), perf)


def _retrain_profile(store, ops_run: int) -> tuple:
    """Measured ``(retrain_every, retrain_stall_ns)`` from the run's stats.

    The simulator charges these only for retrain-blocking indexes, so
    passing them unconditionally is safe.
    """
    from repro.perf.cost_model import CostModel

    if isinstance(store, ParallelShardedStore):
        stats = store.stats()
        count, keys = stats.retrain_count, stats.retrain_keys
    else:
        stores = store.stores if isinstance(store, ShardedStore) else [store]
        count = keys = 0
        for child in stores:
            stats = child.index.stats()
            count += stats.retrain_count
            keys += stats.retrain_keys
    if count == 0 or ops_run == 0:
        return 0, 0.0
    stall_ns = (keys / count) * CostModel().retrain_key_ns
    return max(1, ops_run // count), stall_ns


def _scaling_table(
    spec,
    workload,
    recorder,
    bytes_per_op,
    args,
    store,
    load=None,
    ops=None,
    retrain=None,
) -> str:
    """Project the measured single-thread profile onto ``--threads``."""
    write_fraction = workload.update + workload.insert + workload.rmw
    retrain_every, retrain_stall_ns = retrain or _retrain_profile(
        store, len(recorder)
    )
    measured_runner = None
    if args.projection == "measured":

        def measured_runner(thread_counts):
            return measure_scaling(
                spec,
                [(k, k) for k in load],
                ops,
                thread_counts,
                batch_size=max(args.batch_size, 512),
            )

    rows = thread_scaling(
        recorder.mean(),
        recorder.p999(),
        bytes_per_op,
        args.threads,
        projection=args.projection,
        concurrency=spec.concurrency,
        write_fraction=write_fraction,
        retrain_every=retrain_every,
        retrain_stall_ns=retrain_stall_ns,
        seed=args.seed,
        measured_runner=measured_runner,
    )
    if args.projection == "measured":
        body = [
            [
                r["threads"],
                f"{r['throughput_mops']:.3f}",
                f"{r['wall_s']:.2f}",
                f"{r['mean_ns']:.0f}",
                f"{r['p999_ns']:.0f}",
                f"{min(r['utilization']):.0%}..{max(r['utilization']):.0%}",
            ]
            for r in rows
        ]
        return format_table(
            [
                "workers",
                "Mops/s",
                "wall s",
                "mean ns",
                "p99.9 ns",
                "worker util",
            ],
            body,
            title="Worker scaling (measured wall-clock, real processes)",
        )
    if args.projection == "sim":
        body = [
            [
                r["threads"],
                f"{r['throughput_mops']:.2f}",
                f"{r['p999_ns']:.0f}",
                f"{100 * r['latch_wait_share']:.1f}%",
                f"{100 * r['retrain_stall_share']:.1f}%",
                f"{r['retries']:,}",
                f"{r['retrain_stalls']:,}",
            ]
            for r in rows
        ]
        return format_table(
            [
                "threads",
                "Mops/s",
                "p99.9 ns",
                "latch wait",
                "retrain stall",
                "retries",
                "stalls",
            ],
            body,
            title=f"Thread scaling (sim, {spec.concurrency.describe()})",
        )
    body = [
        [
            r["threads"],
            f"{r['throughput_mops']:.2f}",
            f"{r['gil_thread_mops']:.2f}",
            f"{r['p999_ns']:.0f}",
            f"{r['slowdown']:.3f}",
        ]
        for r in rows
    ]
    return format_table(
        ["threads", "Mops/s", "GIL Mops/s", "p99.9 ns", "slowdown"],
        body,
        title="Thread scaling (analytic bandwidth model)",
    )


def _shard_balance_table(store: ShardedStore) -> str:
    total = sum(store.shard_ops) or 1
    body = [
        [s, f"{len(store.stores[s]):,}", f"{ops:,}", f"{100 * ops / total:.1f}%"]
        for s, ops in enumerate(store.shard_ops)
    ]
    return format_table(
        ["shard", "records", "ops routed", "share"],
        body,
        title=f"Shard balance ({store.shards} range partitions)",
    )


def _worker_balance_table(store: ParallelShardedStore) -> str:
    total = sum(store.worker_ops) or 1
    util = store.worker_utilization()
    body = [
        [w, f"{ops:,}", f"{100 * ops / total:.1f}%", f"{util[w]:.0%}"]
        for w, ops in enumerate(store.worker_ops)
    ]
    return format_table(
        ["worker", "ops routed", "share", "busy share"],
        body,
        title=f"Worker balance ({store.workers} processes, "
        f"{store.shards} range partitions)",
    )


def _worker_health_table(store: ParallelShardedStore) -> str:
    avail = store.availability()
    restarts = store.supervisor.restarts_used
    body = [
        [
            row["worker"],
            f"{row['cmds_sent']:,}",
            f"{row['cmds_done']:,}",
            f"{row['hb_busy_ms']:.1f}",
            (
                f"{row['last_reply_age_s']:.2f}s"
                if row["last_reply_age_s"] is not None
                else "-"
            ),
            f"{row['stalls']:,}" + (" (stalled)" if row["stalled"] else ""),
            f"{restarts[row['worker']]:,}",
            "up" if avail[row["worker"]] else "DOWN",
        ]
        for row in store.health.snapshot()
    ]
    return format_table(
        [
            "worker",
            "sent",
            "done",
            "busy ms",
            "last reply",
            "stalls",
            "restarts",
            "shard",
        ],
        body,
        title=f"Worker health ({store.workers} processes, stall threshold "
        f"{store.health.stall_threshold_s:g}s, restart budget "
        f"{store.supervisor.restart_budget})",
    )


def _span_report(all_spans, quantile: float) -> str:
    """Span summary + tail-latency attribution over the wall-clock trees."""
    summary = summarize_spans(all_spans)
    body = []
    for kind in ("request", "batch", "shard", "worker", "recovery", "event"):
        agg = summary.get(kind)
        if agg:
            body.append(
                [kind, f"{agg['spans']:,}", f"{agg['dur_ns'] / 1e6:.2f}"]
            )
    for etype, n in sorted(summary.get("events", {}).items()):
        body.append([f"  event:{etype}", f"{n:,}", "-"])
    text = format_table(
        ["kind", "spans", "total ms"],
        body or [["(no spans recorded)", "-", "-"]],
        title="Causal spans",
    )
    wall = [s for s in all_spans if s.clock == "wall"]
    result = attribute_spans(wall, quantile=quantile)
    if result.tail:
        text += (
            f"\n\nTail-latency attribution (slowest "
            f"{100 * (1 - quantile):g}% of {len(result.requests):,} "
            f"wall-clock requests)\n"
        )
        text += result.table()
    return text


def cmd_bench(args: argparse.Namespace) -> int:
    try:
        spec = registry.resolve(args.index)
    except UnknownIndexError:
        print(f"unknown index {args.index!r}; see `info`", file=sys.stderr)
        return 2
    if args.workload not in WORKLOADS:
        print(
            f"unknown workload {args.workload!r}; "
            f"one of {sorted(WORKLOADS)}",
            file=sys.stderr,
        )
        return 2
    workload = WORKLOADS[args.workload]
    keys = DATASETS[args.dataset](args.keys, seed=args.seed)
    needs_inserts = workload.insert > 0
    if needs_inserts:
        load, insert_pool = split_load_and_inserts(keys, 0.5, seed=args.seed)
    else:
        load, insert_pool = list(keys), None
    ops = generate_operations(
        workload, args.ops, load, insert_pool, seed=args.seed
    )

    perf = PerfContext()
    store = _build_store(
        spec,
        perf,
        args.shards,
        args.workers,
        restart_budget=args.restart_budget,
        worker_timeout_s=args.worker_timeout,
        degraded=args.degraded,
    )
    parallel = isinstance(store, ParallelShardedStore)
    try:
        mark = perf.begin()
        store.bulk_load([(k, k) for k in load])
        build_ns = perf.end(mark).time_ns
        progress = (
            ProgressReporter(total=len(ops), every=max(1, len(ops) // 20))
            if args.progress
            else None
        )
        wall_start = time.perf_counter()
        recorder, bytes_per_op = run_store_ops(
            store, ops, perf, batch_size=args.batch_size, progress=progress
        )
        wall_s = time.perf_counter() - wall_start

        body = [
            ["index", spec.name],
            ["workload", workload.name],
            ["batch size", args.batch_size],
            ["shards", args.shards],
            ["dataset", f"{args.dataset} ({len(load):,} loaded keys)"],
            ["operations", f"{len(recorder):,}"],
            ["build (sim ms)", f"{build_ns / 1e6:.2f}"],
            ["throughput (sim Mops/s)", f"{recorder.throughput_mops():.3f}"],
            ["mean latency (sim ns)", f"{recorder.mean():.0f}"],
            ["p50 (sim ns)", f"{recorder.p50():.0f}"],
            ["p99.9 (sim ns)", f"{recorder.p999():.0f}"],
            ["bytes/op", f"{bytes_per_op:.0f}"],
        ]
        if parallel:
            body.insert(4, ["workers", args.workers])
            body.append(
                [
                    "throughput (wall Mops/s)",
                    f"{len(recorder) / wall_s / 1e6:.3f}",
                ]
            )
        print(
            format_table(
                ["metric", "value"],
                body,
                title="Benchmark result (simulated hardware)",
            )
        )
        if parallel:
            print()
            print(_worker_balance_table(store))
        elif args.shards > 1:
            print()
            print(_shard_balance_table(store))
        if args.threads:
            print()
            print(
                _scaling_table(
                    spec,
                    workload,
                    recorder,
                    bytes_per_op,
                    args,
                    store,
                    load=load,
                    ops=ops,
                )
            )
    finally:
        if parallel:
            store.close()
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    """Run one combination with full observability and print the report."""
    try:
        spec = registry.resolve(args.index)
    except UnknownIndexError:
        print(f"unknown index {args.index!r}; see `info`", file=sys.stderr)
        return 2
    if args.workload not in WORKLOADS:
        print(
            f"unknown workload {args.workload!r}; "
            f"one of {sorted(WORKLOADS)}",
            file=sys.stderr,
        )
        return 2
    workload = WORKLOADS[args.workload]
    keys = DATASETS[args.dataset](args.keys, seed=args.seed)
    if workload.insert > 0:
        load, insert_pool = split_load_and_inserts(keys, 0.5, seed=args.seed)
    else:
        load, insert_pool = list(keys), None
    ops = generate_operations(
        workload, args.ops, load, insert_pool, seed=args.seed
    )

    if args.spans and args.workers < 2:
        print(
            "--spans needs --workers >= 2 (span tracing instruments the "
            "process-parallel serving engine)",
            file=sys.stderr,
        )
        return 2

    perf = PerfContext()
    tracer = Tracer(rate=args.sample, seed=args.seed)
    perf.tracer = tracer
    sink = None
    if args.trace_out:
        sink = JsonlTraceSink(open(args.trace_out, "w"))
        tracer.add_sink(sink)
    metrics = MetricsRegistry()
    profiler = Profiler(perf)

    store = _build_store(
        spec,
        perf,
        args.shards,
        args.workers,
        trace_rate=args.sample,
        span_rate=args.span_sample if args.spans else 0.0,
        stall_threshold_s=args.stall_threshold,
        restart_budget=args.restart_budget,
        worker_timeout_s=args.worker_timeout,
        degraded=args.degraded,
    )
    parallel = isinstance(store, ParallelShardedStore)
    if args.top and parallel:
        progress = EngineTopView(
            store, total=len(ops), every=max(1, len(ops) // 20)
        )
    elif args.progress:
        progress = ProgressReporter(total=len(ops), every=max(1, len(ops) // 20))
    else:
        progress = None
    all_spans = []
    health_text = ""
    try:
        mark = perf.begin()
        store.bulk_load([(k, k) for k in load])
        build_ns = perf.end(mark).time_ns
        result = run_store_ops(
            store,
            ops,
            perf,
            profiler=profiler,
            batch_size=args.batch_size,
            metrics=metrics,
            progress=progress,
        )
        recorder = result.recorder
        if parallel:
            # Fold worker-side lifecycle events, metric series, profiler
            # ledgers, and worker/event spans into the parent's
            # instruments before any of them are summarised below.
            store.drain_obs(
                tracer=tracer,
                metrics=metrics,
                profiler=profiler,
                spans=store.spans,
            )
            if store.spans is not None:
                all_spans = list(store.spans.spans)
            health_text = _worker_health_table(store)
            index_stats = store.stats()
        else:
            index_stats = store.index.stats() if args.shards == 1 else None
        retrain = _retrain_profile(store, len(recorder))
    finally:
        if parallel:
            store.close()

    scaling_text = ""
    if args.threads:
        # Run the projection before the trace summary so its LATCH_WAIT /
        # RETRAIN_STALL events land in the lifecycle table below.
        if args.projection == "sim":
            from repro.concurrency import OpProfile, simulate_scaling

            sim_spans = None
            if args.spans:
                # Simulated op spans share the exporters with the
                # measured trees; the "sim" prefix and clock keep the
                # two diffable inside one file.
                sim_spans = SpanRecorder(
                    rate=args.span_sample, seed=args.seed, prefix="sim"
                )
            write_fraction = workload.update + workload.insert + workload.rmw
            retrain_every, retrain_stall_ns = retrain
            results = simulate_scaling(
                spec.concurrency,
                OpProfile(
                    mean_ns=recorder.mean(),
                    p999_ns=recorder.p999(),
                    bytes_per_op=result.bytes_per_op,
                    retrain_every=retrain_every,
                    retrain_stall_ns=retrain_stall_ns,
                ),
                args.threads,
                write_fraction=write_fraction,
                seed=args.seed,
                tracer=tracer,
                index_name=spec.name,
                spans=sim_spans,
            )
            if sim_spans is not None:
                all_spans.extend(sim_spans.spans)
            scaling_text = format_table(
                [
                    "threads",
                    "Mops/s",
                    "p99.9 ns",
                    "latch wait",
                    "retrain stall",
                    "retries",
                ],
                [
                    [
                        r.threads,
                        f"{r.throughput_mops:.2f}",
                        f"{r.p999_ns:.0f}",
                        f"{100 * r.latch_wait_share:.1f}%",
                        f"{100 * r.retrain_stall_share:.1f}%",
                        f"{r.retries:,}",
                    ]
                    for r in results
                ],
                title=f"Thread scaling (sim, {spec.concurrency.describe()})",
            )
        else:
            scaling_text = _scaling_table(
                spec,
                workload,
                recorder,
                result.bytes_per_op,
                args,
                store,
                load=load,
                ops=ops,
                retrain=retrain,
            )
    if sink is not None:
        sink.close()

    print(
        format_table(
            ["metric", "value"],
            [
                ["index", spec.name],
                ["workload", workload.name],
                ["dataset", f"{args.dataset} ({len(load):,} loaded keys)"],
                ["operations", f"{len(recorder):,}"],
                ["trace sampling", f"{args.sample:g}"],
                ["build (sim ms)", f"{build_ns / 1e6:.2f}"],
                ["throughput (sim Mops/s)", f"{recorder.throughput_mops():.3f}"],
            ],
            title="Run (simulated hardware)",
        )
    )

    kind_rows = [
        [
            kind.value,
            f"{len(rec):,}",
            f"{rec.mean():.0f}",
            f"{rec.p50():.0f}",
            f"{rec.p99():.0f}",
            f"{rec.p999():.0f}",
        ]
        for kind, rec in sorted(
            result.by_kind.items(), key=lambda kv: -len(kv[1])
        )
    ]
    print()
    print(
        format_table(
            ["op kind", "ops", "mean ns", "p50 ns", "p99 ns", "p99.9 ns"],
            kind_rows,
            title="Latency by operation kind (histogram backend)",
        )
    )

    summary = trace_summary(tracer.records)
    event_rows = [
        [
            etype,
            f"{tracer.count(etype):,}",
            f"{summary.get(etype, {}).get('events', 0):,}",
            f"{summary.get(etype, {}).get('keys', 0):,}",
            f"{summary.get(etype, {}).get('cost_ns', 0.0) / 1e3:.1f}",
        ]
        for etype in EventType.ALL
        if tracer.count(etype)
    ]
    print()
    print(
        format_table(
            ["event", "emitted", "sampled", "keys", "cost (sim us)"],
            event_rows or [["(no lifecycle events)", "-", "-", "-", "-"]],
            title="Lifecycle events",
        )
    )

    if parallel:
        print()
        print(_worker_balance_table(store))
        if health_text:
            print()
            print(health_text)
    elif args.shards > 1:
        print()
        print(_shard_balance_table(store))
    if args.spans:
        print()
        print(_span_report(all_spans, args.span_quantile))
    if index_stats is not None:
        stats = index_stats
        print()
        print(
            format_table(
                ["stat", "value"],
                [
                    ["leaf count", f"{stats.leaf_count:,}"],
                    [
                        "depth avg/max",
                        f"{stats.depth_avg:.2f} / {stats.depth_max}",
                    ],
                    ["retrains", f"{stats.retrain_count:,}"],
                    ["retrained keys", f"{stats.retrain_keys:,}"],
                    *[[k, f"{v:,}"] for k, v in sorted(stats.extra.items())],
                ],
                title=f"Index structure ({spec.name})",
            )
        )
    if scaling_text:
        print()
        print(scaling_text)
    print()
    print(profiler.explain())

    if args.prom_out:
        with open(args.prom_out, "w") as fp:
            fp.write(prometheus_text(metrics, tracer))
        print(f"\nwrote Prometheus exposition to {args.prom_out}")
    if args.trace_out:
        print(f"wrote JSONL trace to {args.trace_out}")
    if args.span_out:
        n = write_spans_jsonl(all_spans, args.span_out)
        print(f"wrote {n} spans to {args.span_out}")
    if args.chrome_out:
        n = write_chrome_trace(all_spans, args.chrome_out)
        print(
            f"wrote {n} Chrome trace events to {args.chrome_out} "
            "(open in chrome://tracing or ui.perfetto.dev)"
        )
    return 0


def cmd_datasets(args: argparse.Namespace) -> int:
    if args.name not in DATASETS:
        print(
            f"unknown dataset {args.name!r}; one of {sorted(DATASETS)}",
            file=sys.stderr,
        )
        return 2
    keys = DATASETS[args.name](args.n, seed=args.seed)
    if args.dump:
        for k in keys:
            print(k)
        return 0
    gaps = [b - a for a, b in zip(keys, keys[1:])]
    rng = random.Random(args.seed)
    print(
        format_table(
            ["property", "value"],
            [
                ["keys", f"{len(keys):,}"],
                ["min", keys[0]],
                ["max", keys[-1]],
                ["median gap", sorted(gaps)[len(gaps) // 2] if gaps else "-"],
                ["max gap", max(gaps) if gaps else "-"],
                ["sample", rng.choice(keys)],
            ],
            title=f"dataset {args.name!r}",
        )
    )
    return 0


def _add_concurrency_flags(sub_parser: argparse.ArgumentParser) -> None:
    sub_parser.add_argument(
        "--shards",
        type=int,
        default=1,
        help="range-partition the store across K shards "
        "(each shard owns its own index instance)",
    )
    sub_parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="serve through N real worker processes (one range partition "
        "each, shared-memory op transport); simulated numbers are "
        "unchanged, wall-clock throughput scales with cores",
    )
    sub_parser.add_argument(
        "--restart-budget",
        type=int,
        default=0,
        help="recovery attempts per worker before the engine degrades: a "
        "dead (or timed-out) worker is respawned, its partition rebuilt "
        "from the retained recipe, and the in-flight command replayed "
        "exactly once (0 = fail-stop, the previous behaviour)",
    )
    sub_parser.add_argument(
        "--worker-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-command deadline; a worker that overruns it is killed "
        "and handled through the same recovery path as a crash "
        "(default: no deadline, stall warnings only)",
    )
    sub_parser.add_argument(
        "--degraded",
        choices=("fail", "partial"),
        default="fail",
        help="after the restart budget is exhausted: 'fail' raises "
        "WorkerDiedError (default), 'partial' keeps serving the "
        "surviving shards (reads return holes, writes to the lost range "
        "raise ShardUnavailableError)",
    )
    sub_parser.add_argument(
        "--threads",
        type=_parse_threads,
        default=[],
        help='project the measured profile onto these thread counts, e.g. '
        '"1,8,32" (off when empty)',
    )
    sub_parser.add_argument(
        "--projection",
        choices=("analytic", "sim", "measured"),
        default="sim",
        help="thread-scaling model: the discrete-event concurrency "
        "simulator (sim), the closed-form bandwidth curve (analytic), or "
        "the real process-parallel engine at each count (measured)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Learned-index reproduction toolkit "
        "(all performance numbers are simulated; see DESIGN.md).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="list indexes and capabilities")

    bench = sub.add_parser("bench", help="run one index/workload combination")
    bench.add_argument("--index", default="alex", help="index name (see info)")
    bench.add_argument(
        "--workload",
        default="ycsb-b",
        help=f"one of {sorted(WORKLOADS)}",
    )
    bench.add_argument(
        "--dataset", default="ycsb", choices=sorted(DATASETS), help="key set"
    )
    bench.add_argument("--keys", type=int, default=50_000)
    bench.add_argument("--ops", type=int, default=20_000)
    bench.add_argument("--seed", type=int, default=0)
    bench.add_argument(
        "--batch-size",
        type=int,
        default=1,
        help="group runs of consecutive reads into get_many batches, "
        "consecutive writes into put_many batches, and consecutive "
        "same-length scans into scan_many batches of this size "
        "(1 = per-key dispatch)",
    )
    bench.add_argument(
        "--progress",
        action="store_true",
        help="print live progress/throughput lines to stderr",
    )
    _add_concurrency_flags(bench)

    report = sub.add_parser(
        "report",
        help="run one combination with tracing/metrics and print a report",
    )
    report.add_argument("--index", default="alex", help="index name (see info)")
    report.add_argument(
        "--workload", default="ycsb-d", help=f"one of {sorted(WORKLOADS)}"
    )
    report.add_argument(
        "--dataset", default="ycsb", choices=sorted(DATASETS), help="key set"
    )
    report.add_argument("--keys", type=int, default=50_000)
    report.add_argument("--ops", type=int, default=20_000)
    report.add_argument("--seed", type=int, default=0)
    report.add_argument(
        "--batch-size",
        type=int,
        default=1,
        help="batch consecutive reads/writes/scans (get_many/put_many/"
        "scan_many) up to this size (1 = per-key dispatch)",
    )
    report.add_argument(
        "--sample",
        type=float,
        default=1.0,
        help="lifecycle-trace sampling rate in [0, 1] "
        "(event counts stay exact at any rate)",
    )
    report.add_argument(
        "--trace-out", default="", help="write the sampled trace as JSONL"
    )
    report.add_argument(
        "--prom-out",
        default="",
        help="write Prometheus-style text exposition of the run's metrics",
    )
    report.add_argument(
        "--progress",
        action="store_true",
        help="print live progress/throughput lines to stderr",
    )
    report.add_argument(
        "--spans",
        action="store_true",
        help="record causal span trees (request -> batch -> shard -> "
        "worker -> event) through the parallel engine; needs --workers >= 2",
    )
    report.add_argument(
        "--span-sample",
        type=float,
        default=1.0,
        help="head-based span sampling rate in [0, 1]: a request is "
        "recorded whole or not at all (request counts stay exact)",
    )
    report.add_argument(
        "--span-quantile",
        type=float,
        default=0.9,
        help="attribute the slowest (1 - q) fraction of requests in the "
        "tail-latency table (default 0.9 = slowest 10%%)",
    )
    report.add_argument(
        "--span-out", default="", help="write recorded spans as JSONL"
    )
    report.add_argument(
        "--chrome-out",
        default="",
        help="write recorded spans as Chrome trace-event JSON "
        "(chrome://tracing / ui.perfetto.dev)",
    )
    report.add_argument(
        "--top",
        action="store_true",
        help="live `top`-style line on stderr: progress plus per-worker "
        "health while the run executes (parallel engine only)",
    )
    report.add_argument(
        "--stall-threshold",
        type=float,
        default=5.0,
        help="seconds a worker command may stay unanswered before the "
        "worker is flagged stalled (default 5)",
    )
    _add_concurrency_flags(report)

    ds = sub.add_parser("datasets", help="inspect a synthetic dataset")
    ds.add_argument("--name", default="ycsb")
    ds.add_argument("--n", type=int, default=10_000)
    ds.add_argument("--seed", type=int, default=0)
    ds.add_argument("--dump", action="store_true", help="print raw keys")

    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "info": cmd_info,
        "bench": cmd_bench,
        "report": cmd_report,
        "datasets": cmd_datasets,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
