"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``info`` — list every registered index with its category, figure
  membership, and Table-I capabilities.
* ``bench`` — run one (index, workload, dataset) combination end-to-end
  through the Viper store and print simulated throughput/latency.
* ``datasets`` — summarise a synthetic dataset (and optionally dump keys).

Index resolution goes through :mod:`repro.registry`: any canonical name
or alias listed by ``info`` works, case-insensitively.
"""

from __future__ import annotations

import argparse
import random
import sys

from repro import PerfContext, ViperStore, registry
from repro.bench import format_table, run_store_ops
from repro.registry import UnknownIndexError
from repro.workloads import generate_operations
from repro.workloads.datasets import DATASETS
from repro.workloads.ycsb import (
    READ_ONLY,
    STANDARD_WORKLOADS,
    WRITE_ONLY,
    split_load_and_inserts,
)

#: CLI name -> spec, generated from the registry (kept importable for
#: anything that wants "every index the CLI can drive"; an
#: :class:`~repro.registry.IndexSpec` is callable as ``spec(perf)``).
INDEXES = {spec.cli_name: spec for spec in registry.specs()}

WORKLOADS = {
    **{name.lower(): spec for name, spec in STANDARD_WORKLOADS.items()},
    "read-only": READ_ONLY,
    "write-only": WRITE_ONLY,
}


def cmd_info(_args: argparse.Namespace) -> int:
    rows = []
    for spec in registry.specs():
        caps = spec.build(PerfContext()).capabilities()
        rows.append(
            [
                spec.cli_name,
                spec.category,
                ",".join(spec.figures) or "-",
                "yes" if caps.sorted_order else "no",
                "yes" if caps.updatable else "no",
                "bounded" if caps.bounded_error else "unfixed",
                caps.inner_node or "-",
                caps.insertion or "-",
            ]
        )
    print(
        format_table(
            [
                "index",
                "category",
                "figures",
                "sorted",
                "updatable",
                "error",
                "inner node",
                "insertion",
            ],
            rows,
            title="Available indexes",
        )
    )
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    try:
        spec = registry.resolve(args.index)
    except UnknownIndexError:
        print(f"unknown index {args.index!r}; see `info`", file=sys.stderr)
        return 2
    if args.workload not in WORKLOADS:
        print(
            f"unknown workload {args.workload!r}; "
            f"one of {sorted(WORKLOADS)}",
            file=sys.stderr,
        )
        return 2
    workload = WORKLOADS[args.workload]
    keys = DATASETS[args.dataset](args.keys, seed=args.seed)
    needs_inserts = workload.insert > 0
    if needs_inserts:
        load, insert_pool = split_load_and_inserts(keys, 0.5, seed=args.seed)
    else:
        load, insert_pool = list(keys), None
    ops = generate_operations(
        workload, args.ops, load, insert_pool, seed=args.seed
    )

    perf = PerfContext()
    store = ViperStore(spec.build(perf), perf)
    mark = perf.begin()
    store.bulk_load([(k, k) for k in load])
    build_ns = perf.end(mark).time_ns
    recorder, bytes_per_op = run_store_ops(
        store, ops, perf, batch_size=args.batch_size
    )

    print(
        format_table(
            ["metric", "value"],
            [
                ["index", spec.name],
                ["workload", workload.name],
                ["batch size", args.batch_size],
                ["dataset", f"{args.dataset} ({len(load):,} loaded keys)"],
                ["operations", f"{len(recorder):,}"],
                ["build (sim ms)", f"{build_ns / 1e6:.2f}"],
                ["throughput (sim Mops/s)", f"{recorder.throughput_mops():.3f}"],
                ["mean latency (sim ns)", f"{recorder.mean():.0f}"],
                ["p50 (sim ns)", f"{recorder.p50():.0f}"],
                ["p99.9 (sim ns)", f"{recorder.p999():.0f}"],
                ["bytes/op", f"{bytes_per_op:.0f}"],
            ],
            title="Benchmark result (simulated hardware)",
        )
    )
    return 0


def cmd_datasets(args: argparse.Namespace) -> int:
    if args.name not in DATASETS:
        print(
            f"unknown dataset {args.name!r}; one of {sorted(DATASETS)}",
            file=sys.stderr,
        )
        return 2
    keys = DATASETS[args.name](args.n, seed=args.seed)
    if args.dump:
        for k in keys:
            print(k)
        return 0
    gaps = [b - a for a, b in zip(keys, keys[1:])]
    rng = random.Random(args.seed)
    print(
        format_table(
            ["property", "value"],
            [
                ["keys", f"{len(keys):,}"],
                ["min", keys[0]],
                ["max", keys[-1]],
                ["median gap", sorted(gaps)[len(gaps) // 2] if gaps else "-"],
                ["max gap", max(gaps) if gaps else "-"],
                ["sample", rng.choice(keys)],
            ],
            title=f"dataset {args.name!r}",
        )
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Learned-index reproduction toolkit "
        "(all performance numbers are simulated; see DESIGN.md).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="list indexes and capabilities")

    bench = sub.add_parser("bench", help="run one index/workload combination")
    bench.add_argument("--index", default="alex", help="index name (see info)")
    bench.add_argument(
        "--workload",
        default="ycsb-b",
        help=f"one of {sorted(WORKLOADS)}",
    )
    bench.add_argument(
        "--dataset", default="ycsb", choices=sorted(DATASETS), help="key set"
    )
    bench.add_argument("--keys", type=int, default=50_000)
    bench.add_argument("--ops", type=int, default=20_000)
    bench.add_argument("--seed", type=int, default=0)
    bench.add_argument(
        "--batch-size",
        type=int,
        default=1,
        help="group runs of consecutive reads into get_many batches and "
        "consecutive writes into put_many batches of this size "
        "(1 = per-key dispatch)",
    )

    ds = sub.add_parser("datasets", help="inspect a synthetic dataset")
    ds.add_argument("--name", default="ycsb")
    ds.add_argument("--n", type=int, default=10_000)
    ds.add_argument("--seed", type=int, default=0)
    ds.add_argument("--dump", action="store_true", help="print raw keys")

    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "info": cmd_info,
        "bench": cmd_bench,
        "datasets": cmd_datasets,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
