"""CCEH: cacheline-conscious extendible hashing.

The directory maps the hash's top ``global_depth`` bits to fixed-size
segments; inside a segment, a key probes a 4-slot cacheline bucket plus a
bounded linear-probe window.  A point operation is therefore one hash,
one directory access, and one (rarely two) cacheline touches — the cost
profile that makes CCEH the throughput ceiling in Figs 10-15.  There is
no key order: range queries are unsupported, exactly why the paper keeps
CCEH as a reference line rather than a contender.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence, Tuple

from repro.core.interfaces import (
    Capabilities,
    IndexStats,
    Key,
    Index,
    Value,
)
from repro.errors import InvalidConfigurationError, ReproError
from repro.perf.context import PerfContext
from repro.obs.trace import EventType
from repro.perf.events import Event

_SLOT_BYTES = 16
_BUCKET_SLOTS = 4  # one 64-byte cacheline
_PROBE_BUCKETS = 4  # linear probing window, in cachelines
_EMPTY = None


class _Tombstone:
    """Marks a deleted slot so probe chains stay intact."""

    __repr__ = lambda self: "<tombstone>"  # noqa: E731


_TOMBSTONE = _Tombstone()


def _hash64(key: int) -> int:
    """SplitMix64 finaliser: deterministic, well-mixed 64-bit hash."""
    z = (key + 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
    return z ^ (z >> 31)


class _Segment:
    __slots__ = ("local_depth", "slots")

    def __init__(self, local_depth: int, n_slots: int):
        self.local_depth = local_depth
        self.slots: List[Optional[Tuple[int, Key, Any]]] = [_EMPTY] * n_slots


class CCEH(Index):
    """Extendible hash table with cacheline buckets (unordered)."""

    name = "CCEH"

    def __init__(
        self,
        segment_bits: int = 10,
        initial_depth: int = 2,
        perf: Optional[PerfContext] = None,
    ):
        super().__init__(perf)
        if not 4 <= segment_bits <= 20:
            raise InvalidConfigurationError("segment_bits must be in [4, 20]")
        if initial_depth < 1:
            raise InvalidConfigurationError("initial_depth must be >= 1")
        self.segment_bits = segment_bits
        self._segment_slots = 1 << segment_bits
        self.global_depth = initial_depth
        # Each directory entry initially owns its own segment.
        self._directory: List[_Segment] = [
            _Segment(initial_depth, self._segment_slots)
            for _ in range(1 << initial_depth)
        ]
        self._n = 0

    # -- hashing ------------------------------------------------------------

    def _locate(self, key: Key) -> Tuple[int, _Segment, int]:
        h = _hash64(key)
        self.perf.charge(Event.HASH)
        dir_idx = h >> (64 - self.global_depth)
        self.perf.charge(Event.DRAM_HOP)  # directory
        segment = self._directory[dir_idx]
        bucket = (h & (self._segment_slots - 1)) // _BUCKET_SLOTS
        return h, segment, bucket

    def _probe_slots(self, segment: _Segment, bucket: int):
        """Slot indexes in the probe window, cacheline by cacheline."""
        n_buckets = self._segment_slots // _BUCKET_SLOTS
        for b in range(_PROBE_BUCKETS):
            base = ((bucket + b) % n_buckets) * _BUCKET_SLOTS
            if b > 0:
                self.perf.charge(Event.DRAM_SEQ)
            for off in range(_BUCKET_SLOTS):
                yield base + off

    # -- operations -----------------------------------------------------------

    def get(self, key: Key) -> Optional[Value]:
        _, segment, bucket = self._locate(key)
        self.perf.charge(Event.DRAM_HOP)  # the bucket cacheline
        for slot in self._probe_slots(segment, bucket):
            entry = segment.slots[slot]
            self.perf.charge(Event.COMPARE)
            if entry is _EMPTY:
                return None
            if entry is _TOMBSTONE:
                continue
            if entry[1] == key:
                return entry[2]
        return None

    def insert(self, key: Key, value: Value) -> None:
        for _ in range(64):  # split depth is bounded by the hash width
            h, segment, bucket = self._locate(key)
            self.perf.charge(Event.DRAM_HOP)
            first_free = -1
            for slot in self._probe_slots(segment, bucket):
                entry = segment.slots[slot]
                self.perf.charge(Event.COMPARE)
                if entry is _EMPTY:
                    if first_free < 0:
                        first_free = slot
                    break
                if entry is _TOMBSTONE:
                    if first_free < 0:
                        first_free = slot
                    continue
                if entry[1] == key:
                    segment.slots[slot] = (h, key, value)
                    return
            if first_free >= 0:
                segment.slots[first_free] = (h, key, value)
                self._n += 1
                return
            self._split(segment)
        raise ReproError(f"CCEH insert of key {key} did not converge")

    def delete(self, key: Key) -> bool:
        _, segment, bucket = self._locate(key)
        self.perf.charge(Event.DRAM_HOP)
        for slot in self._probe_slots(segment, bucket):
            entry = segment.slots[slot]
            self.perf.charge(Event.COMPARE)
            if entry is _EMPTY:
                return False
            if entry is _TOMBSTONE:
                continue
            if entry[1] == key:
                segment.slots[slot] = _TOMBSTONE
                self._n -= 1
                return True
        return False

    def update(self, key: Key, value: Value) -> bool:
        if self.get(key) is None:
            return False
        self.insert(key, value)
        return True

    def _split(self, segment: _Segment) -> None:
        """Split one segment; double the directory if needed."""
        if segment.local_depth == self.global_depth:
            self._directory = [s for s in self._directory for _ in (0, 1)]
            self.global_depth += 1
            self.perf.charge(Event.ALLOC)
            self.perf.charge(Event.KEY_MOVE, len(self._directory))
            self.perf.trace(
                EventType.NODE_ALLOC,
                index=self.name,
                count=len(self._directory),
                reason="directory_double",
            )

        new_depth = segment.local_depth + 1
        left = _Segment(new_depth, self._segment_slots)
        right = _Segment(new_depth, self._segment_slots)
        self.perf.charge(Event.ALLOC, 2)

        moved = 0
        for entry in segment.slots:
            if entry is _EMPTY or entry is _TOMBSTONE:
                continue
            h, key, value = entry
            target = right if (h >> (64 - new_depth)) & 1 else left
            self._rehash_into(target, h, key, value)
            moved += 1
        self.perf.charge(Event.KEY_MOVE, moved)
        self.perf.trace(
            EventType.LEAF_SPLIT,
            index=self.name,
            keys=moved,
            count=2,
            reason="segment_full",
        )

        # Repoint every directory entry that referenced the old segment:
        # the bit that ``new_depth`` adds decides left vs. right.
        bit_shift = self.global_depth - new_depth
        for i, seg in enumerate(self._directory):
            if seg is segment:
                self._directory[i] = right if (i >> bit_shift) & 1 else left

    def _rehash_into(self, segment: _Segment, h: int, key: Key, value: Any) -> None:
        bucket = (h & (self._segment_slots - 1)) // _BUCKET_SLOTS
        n_buckets = self._segment_slots // _BUCKET_SLOTS
        for b in range(n_buckets):  # during a split, probing may wrap far
            base = ((bucket + b) % n_buckets) * _BUCKET_SLOTS
            for off in range(_BUCKET_SLOTS):
                if segment.slots[base + off] is _EMPTY:
                    segment.slots[base + off] = (h, key, value)
                    return
        raise ReproError("CCEH split produced an over-full segment")

    # -- bulk -----------------------------------------------------------------

    def bulk_load(self, items: Sequence[Tuple[Key, Value]]) -> None:
        for key, value in items:
            self.insert(key, value)

    def __len__(self) -> int:
        return self._n

    # -- metadata -----------------------------------------------------------

    def size_bytes(self) -> int:
        segments = {id(s): s for s in self._directory}
        return (
            len(self._directory) * 8
            + len(segments) * self._segment_slots * _SLOT_BYTES
        )

    def stats(self) -> IndexStats:
        segments = {id(s) for s in self._directory}
        return IndexStats(
            depth_avg=2.0,
            depth_max=2,
            leaf_count=len(segments),
            extra={"global_depth": self.global_depth},
        )

    @classmethod
    def capabilities(cls) -> Capabilities:
        return Capabilities(
            sorted_order=False,
            updatable=True,
            bounded_error=True,
            concurrent_read=True,
            concurrent_write=True,
            inner_node="directory",
            leaf_node="hash segment",
            approximation="-",
            insertion="hash probe",
            retraining="segment split",
        )
