"""The six traditional indexes the paper compares against (§III-A1).

* :class:`BPlusTree` — STX-style in-memory B+tree.
* :class:`SkipList` — LevelDB-style skip list.
* :class:`Masstree` — trie of B+trees over 8-byte key slices.
* :class:`BwTree` — mapping table + delta chains + consolidation.
* :class:`Wormhole` — hash-accelerated trie over sorted leaves.
* :class:`CCEH` — cacheline-conscious extendible hashing (unordered).
"""

from repro.traditional.btree import BPlusTree
from repro.traditional.skiplist import SkipList
from repro.traditional.masstree import Masstree
from repro.traditional.bwtree import BwTree
from repro.traditional.wormhole import Wormhole
from repro.traditional.cceh import CCEH

__all__ = ["BPlusTree", "SkipList", "Masstree", "BwTree", "Wormhole", "CCEH"]
