"""STX-style in-memory B+tree.

Slotted inner and leaf nodes sized for cache lines (STX uses ~256-byte
nodes); every level descended costs one cache-missing hop plus an
in-node binary search.  Leaves are chained for range scans.  Deletion
removes from the leaf without rebalancing (STX-style lazy deletion is
sufficient for the paper's workloads, which never shrink the tree).
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Any, Iterator, List, Optional, Sequence, Tuple

from repro.core.interfaces import (
    Capabilities,
    IndexStats,
    Key,
    UpdatableIndex,
    Value,
    check_sorted_unique,
)
from repro.errors import InvalidConfigurationError
from repro.perf.context import PerfContext
from repro.obs.trace import EventType
from repro.perf.events import Event

_SLOT_BYTES = 16
_NODE_OVERHEAD = 32

#: Below this batch size ``get_many``'s sort + leaf caching costs more
#: than the per-key loop it replaces.
_MIN_BATCH = 16


class _LeafNode:
    __slots__ = ("keys", "values", "next")

    def __init__(self):
        self.keys: List[Key] = []
        self.values: List[Any] = []
        self.next: Optional["_LeafNode"] = None


class _InnerNode:
    __slots__ = ("keys", "children")

    def __init__(self):
        # children[i] covers keys < keys[i]; children[-1] covers the rest.
        self.keys: List[Key] = []
        self.children: List[Any] = []


class BPlusTree(UpdatableIndex):
    """B+tree with configurable fanout (default 32, ~STX node size)."""

    name = "BTree"

    def __init__(self, fanout: int = 32, perf: Optional[PerfContext] = None):
        super().__init__(perf)
        if fanout < 4:
            raise InvalidConfigurationError(f"fanout must be >= 4, got {fanout}")
        self.fanout = fanout
        self._root: Any = _LeafNode()
        self._height = 1
        self._n = 0
        self._node_count = 1

    # -- construction ---------------------------------------------------

    def bulk_load(self, items: Sequence[Tuple[Key, Value]]) -> None:
        check_sorted_unique(items)
        self._n = len(items)
        self._node_count = 0
        if not items:
            self._root = _LeafNode()
            self._height = 1
            self._node_count = 1
            return
        # Bottom-up bulk build: pack leaves, then stack inner levels.
        per_leaf = max(2, (self.fanout * 3) // 4)  # leave insert slack
        self.perf.charge(Event.KEY_MOVE, len(items))
        leaves: List[_LeafNode] = []
        for start in range(0, len(items), per_leaf):
            leaf = _LeafNode()
            chunk = items[start : start + per_leaf]
            leaf.keys = [k for k, _ in chunk]
            leaf.values = [v for _, v in chunk]
            leaves.append(leaf)
        for a, b in zip(leaves, leaves[1:]):
            a.next = b
        self._node_count += len(leaves)
        self.perf.charge(Event.ALLOC, len(leaves))

        level: List[Tuple[Key, Any]] = [(lf.keys[0], lf) for lf in leaves]
        height = 1
        while len(level) > 1:
            parents: List[Tuple[Key, Any]] = []
            for start in range(0, len(level), self.fanout):
                chunk = level[start : start + self.fanout]
                inner = _InnerNode()
                inner.children = [child for _, child in chunk]
                inner.keys = [k for k, _ in chunk[1:]]
                parents.append((chunk[0][0], inner))
            self._node_count += len(parents)
            self.perf.charge(Event.ALLOC, len(parents))
            level = parents
            height += 1
        self._root = level[0][1]
        self._height = height

    # -- traversal ----------------------------------------------------------

    def _child_slot(self, inner: _InnerNode, key: Key) -> int:
        """Binary search for the child covering ``key``, charging compares."""
        charge = self.perf.charge
        lo, hi = 0, len(inner.keys)
        while lo < hi:
            mid = (lo + hi) // 2
            charge(Event.COMPARE)
            charge(Event.DRAM_SEQ)
            if key < inner.keys[mid]:
                hi = mid
            else:
                lo = mid + 1
        return lo

    def _find_leaf(self, key: Key) -> Tuple[_LeafNode, List[_InnerNode], List[int]]:
        node = self._root
        path: List[_InnerNode] = []
        slots: List[int] = []
        charge = self.perf.charge
        while isinstance(node, _InnerNode):
            charge(Event.DRAM_HOP)
            slot = self._child_slot(node, key)
            path.append(node)
            slots.append(slot)
            node = node.children[slot]
        charge(Event.DRAM_HOP)
        return node, path, slots

    def _descend(
        self, key: Key
    ) -> Tuple[_LeafNode, List[_InnerNode], List[int], int]:
        """Uncharged root-to-leaf walk for the batch paths.

        Returns ``(leaf, path, slots, compares)``; the caller bills the
        walk as a coarse aggregate afterwards — one hop per level plus
        one comparison per halving of each inner node — instead of
        charging every probe individually as :meth:`_find_leaf` does.
        """
        node = self._root
        path: List[_InnerNode] = []
        slots: List[int] = []
        compares = 0
        while isinstance(node, _InnerNode):
            slot = bisect_right(node.keys, key)
            path.append(node)
            slots.append(slot)
            compares += max(1, len(node.keys).bit_length())
            node = node.children[slot]
        return node, path, slots, compares

    def _leaf_rank(self, leaf: _LeafNode, key: Key) -> int:
        """Rightmost index with leaf.keys[i] <= key, or -1."""
        charge = self.perf.charge
        lo, hi = 0, len(leaf.keys) - 1
        ans = -1
        while lo <= hi:
            mid = (lo + hi) // 2
            charge(Event.COMPARE)
            charge(Event.DRAM_SEQ)
            if leaf.keys[mid] <= key:
                ans = mid
                lo = mid + 1
            else:
                hi = mid - 1
        return ans

    # -- queries ----------------------------------------------------------

    def get(self, key: Key) -> Optional[Value]:
        leaf, _, _ = self._find_leaf(key)
        idx = self._leaf_rank(leaf, key)
        if idx >= 0 and leaf.keys[idx] == key:
            return leaf.values[idx]
        return None

    def get_many(self, keys: Sequence[Key]) -> List[Optional[Value]]:
        """Sorted-batch probe with leaf caching.

        The batch is probed in key order, so consecutive keys usually hit
        the leaf already in hand (checked against the next leaf's fence)
        and the root-to-leaf walk runs once per *leaf* touched rather
        than once per key.  Results are exactly the per-key loop's; like
        every batch fast path the in-leaf search is billed as a coarse
        aggregate — one comparison per halving of the touched leaf — on
        top of the individually-charged descents (``docs/performance.md``).
        """
        n = len(keys)
        if n < _MIN_BATCH:
            return [self.get(k) for k in keys]
        results: List[Optional[Value]] = [None] * n
        order = sorted(range(n), key=keys.__getitem__)
        leaf: Optional[_LeafNode] = None
        compares = 0
        hops = 0
        for i in order:
            key = keys[i]
            if leaf is not None:
                nxt = leaf.next
                if nxt is not None and (not nxt.keys or key >= nxt.keys[0]):
                    leaf = None
            if leaf is None:
                leaf, _, _, walk = self._descend(key)
                compares += walk
                hops += self._height
            idx = bisect_right(leaf.keys, key) - 1
            compares += max(1, len(leaf.keys).bit_length())
            if idx >= 0 and leaf.keys[idx] == key:
                results[i] = leaf.values[idx]
        self.perf.charge(Event.DRAM_HOP, hops)
        self.perf.charge(Event.COMPARE, compares)
        self.perf.charge(Event.DRAM_SEQ, compares)
        return results

    def range(self, lo: Key, hi: Key) -> Iterator[Tuple[Key, Value]]:
        leaf, _, _ = self._find_leaf(lo)
        idx = self._leaf_rank(leaf, lo)
        if idx < 0 or (idx < len(leaf.keys) and leaf.keys[idx] < lo):
            idx += 1
        while leaf is not None:
            while idx < len(leaf.keys):
                if leaf.keys[idx] > hi:
                    return
                self.perf.charge(Event.DRAM_SEQ)
                yield leaf.keys[idx], leaf.values[idx]
                idx += 1
            leaf = leaf.next
            idx = 0
            if leaf is not None:
                self.perf.charge(Event.DRAM_HOP)

    def scan_many(
        self, starts: Sequence[Key], count: int
    ) -> List[List[Tuple[Key, Value]]]:
        """Native batch scan: charged descent per start, sliced leaves.

        Positioning keeps the scalar charged walk (``_find_leaf`` +
        ``_leaf_rank``); the per-record yield loop becomes one slice copy
        per leaf visited, billed with an aggregate ``DRAM_SEQ`` covering
        the records taken.  The leaf-chain hop is only charged when the
        scan actually continues into the next leaf — exactly when the
        abandoned scalar generator would have charged it — so the event
        totals are bit-identical to sequential :meth:`scan` calls.
        """
        limit = count if count > 0 else 1
        results: List[List[Tuple[Key, Value]]] = []
        for start in starts:
            leaf, _, _ = self._find_leaf(start)
            idx = self._leaf_rank(leaf, start)
            if idx < 0 or (idx < len(leaf.keys) and leaf.keys[idx] < start):
                idx += 1
            out: List[Tuple[Key, Value]] = []
            while leaf is not None:
                take = min(len(leaf.keys) - idx, limit - len(out))
                if take > 0:
                    self.perf.charge(Event.DRAM_SEQ, take)
                    out.extend(
                        zip(leaf.keys[idx : idx + take],
                            leaf.values[idx : idx + take])
                    )
                if len(out) >= limit:
                    break
                leaf = leaf.next
                idx = 0
                if leaf is not None:
                    self.perf.charge(Event.DRAM_HOP)
            results.append(out)
        return results

    def __len__(self) -> int:
        return self._n

    # -- mutation -----------------------------------------------------------

    def insert(self, key: Key, value: Value) -> None:
        self.upsert(key, value)

    def upsert(self, key: Key, value: Value) -> Optional[Value]:
        """One root-to-leaf descent resolves the old value and the write."""
        leaf, path, slots = self._find_leaf(key)
        idx = self._leaf_rank(leaf, key)
        if idx >= 0 and leaf.keys[idx] == key:
            old = leaf.values[idx]
            leaf.values[idx] = value
            return old
        pos = idx + 1
        self.perf.charge(Event.KEY_MOVE, len(leaf.keys) - pos)
        leaf.keys.insert(pos, key)
        leaf.values.insert(pos, value)
        self._n += 1
        if len(leaf.keys) > self.fanout:
            self._split_leaf(leaf, path, slots)
        return None

    def insert_many(self, items: Sequence[Tuple[Key, Value]]) -> None:
        """Bulk upsert; same descent-sharing walk as :meth:`upsert_many`."""
        self.upsert_many(items)

    def upsert_many(
        self, items: Sequence[Tuple[Key, Value]]
    ) -> List[Optional[Value]]:
        """Bulk upsert: sort the batch, then reuse the descent.

        Consecutive sorted keys usually land in the same leaf, so the
        root-to-leaf walk runs once per *leaf* touched instead of once
        per key.  The cached leaf is abandoned after a split (its parent
        path is stale) or when the next key belongs to a later leaf;
        either way the next key re-descends.  ``sorted`` is stable, so a
        duplicated key's occurrences apply in batch order: the last
        value wins and each occurrence's returned "old" is its
        predecessor's value, exactly as sequential upserts would.  Like
        ``get_many`` the in-leaf search is billed as a coarse aggregate
        — one comparison per halving of the touched leaf — on top of the
        individually-charged descents (``docs/performance.md``).
        """
        n = len(items)
        olds: List[Optional[Value]] = [None] * n
        if n < _MIN_BATCH:
            for j, (key, value) in enumerate(items):
                olds[j] = self.upsert(key, value)
            return olds
        batch_keys = [k for k, _ in items]
        order = sorted(range(n), key=batch_keys.__getitem__)
        leaf: Optional[_LeafNode] = None
        path: List[_InnerNode] = []
        slots: List[int] = []
        compares = 0
        hops = 0
        moves = 0
        for j in order:
            key, value = items[j]
            if leaf is not None:
                nxt = leaf.next
                if nxt is not None and (not nxt.keys or key >= nxt.keys[0]):
                    leaf = None
            if leaf is None:
                leaf, path, slots, walk = self._descend(key)
                compares += walk
                hops += self._height
            idx = bisect_right(leaf.keys, key) - 1
            compares += max(1, len(leaf.keys).bit_length())
            if idx >= 0 and leaf.keys[idx] == key:
                olds[j] = leaf.values[idx]
                leaf.values[idx] = value
                continue
            pos = idx + 1
            moves += len(leaf.keys) - pos
            leaf.keys.insert(pos, key)
            leaf.values.insert(pos, value)
            self._n += 1
            if len(leaf.keys) > self.fanout:
                self._split_leaf(leaf, path, slots)
                leaf = None  # the cached parent path is now stale
        self.perf.charge(Event.DRAM_HOP, hops)
        self.perf.charge(Event.COMPARE, compares)
        self.perf.charge(Event.DRAM_SEQ, compares)
        self.perf.charge(Event.KEY_MOVE, moves)
        return olds

    def _split_leaf(
        self, leaf: _LeafNode, path: List[_InnerNode], slots: List[int]
    ) -> None:
        charge = self.perf.charge
        mid = len(leaf.keys) // 2
        right = _LeafNode()
        right.keys = leaf.keys[mid:]
        right.values = leaf.values[mid:]
        right.next = leaf.next
        leaf.keys = leaf.keys[:mid]
        leaf.values = leaf.values[:mid]
        leaf.next = right
        charge(Event.ALLOC)
        charge(Event.KEY_MOVE, len(right.keys))
        self._node_count += 1
        self.perf.trace(
            EventType.LEAF_SPLIT,
            index=self.name,
            key_lo=leaf.keys[0] if leaf.keys else None,
            key_hi=right.keys[-1],
            keys=len(leaf.keys) + len(right.keys),
            count=2,
            reason="fanout_exceeded",
        )
        self._insert_into_parent(right.keys[0], right, path, slots)

    def _insert_into_parent(
        self, sep: Key, child: Any, path: List[_InnerNode], slots: List[int]
    ) -> None:
        charge = self.perf.charge
        if not path:
            root = _InnerNode()
            root.keys = [sep]
            root.children = [self._root, child]
            self._root = root
            self._height += 1
            self._node_count += 1
            charge(Event.ALLOC)
            return
        parent = path[-1]
        slot = slots[-1]
        charge(Event.KEY_MOVE, len(parent.keys) - slot)
        parent.keys.insert(slot, sep)
        parent.children.insert(slot + 1, child)
        if len(parent.children) > self.fanout:
            mid = len(parent.children) // 2
            right = _InnerNode()
            right.children = parent.children[mid:]
            right.keys = parent.keys[mid:]
            sep_up = parent.keys[mid - 1]
            parent.children = parent.children[:mid]
            parent.keys = parent.keys[: mid - 1]
            charge(Event.ALLOC)
            charge(Event.KEY_MOVE, len(right.keys))
            self._node_count += 1
            self._insert_into_parent(sep_up, right, path[:-1], slots[:-1])

    def delete(self, key: Key) -> bool:
        leaf, _, _ = self._find_leaf(key)
        idx = self._leaf_rank(leaf, key)
        if idx < 0 or leaf.keys[idx] != key:
            return False
        self.perf.charge(Event.KEY_MOVE, len(leaf.keys) - idx - 1)
        del leaf.keys[idx]
        del leaf.values[idx]
        self._n -= 1
        return True

    # -- metadata -----------------------------------------------------------

    def size_bytes(self) -> int:
        # Inner nodes only; the leaves are the key/pointer store itself
        # (Table III counts them in the "Index+key" column).
        inner = max(0, self._node_count - self._count_leaves())
        return inner * (self.fanout * _SLOT_BYTES + _NODE_OVERHEAD) + 64

    def stats(self) -> IndexStats:
        return IndexStats(
            depth_avg=float(self._height),
            depth_max=self._height,
            leaf_count=self._count_leaves(),
        )

    def _count_leaves(self) -> int:
        node = self._root
        while isinstance(node, _InnerNode):
            node = node.children[0]
        count = 0
        while node is not None:
            count += 1
            node = node.next
        return count

    @classmethod
    def capabilities(cls) -> Capabilities:
        return Capabilities(
            sorted_order=True,
            updatable=True,
            bounded_error=True,
            concurrent_read=True,
            concurrent_write=False,
            inner_node="B+tree",
            leaf_node="sorted array",
            approximation="-",
            insertion="node split",
            retraining="-",
        )
