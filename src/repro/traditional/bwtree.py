"""Bw-tree: mapping table, delta chains, and consolidation.

Writes prepend a delta record to the target page's chain through the
mapping table (lock-free CAS in the original; a list-head swap here, with
the same cost profile).  Reads must walk the delta chain before reaching
the base page — each delta is a separate allocation, i.e. a cache-missing
hop — so read cost degrades as chains grow until consolidation folds them
into a fresh base page.

Simplification (see DESIGN.md): the original's multi-level Bw-tree inner
structure with split/merge deltas is replaced by a single sorted fence
directory; leaf behaviour (chains, consolidation, splits) is faithful.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from typing import Any, Iterator, List, Optional, Sequence, Tuple

from repro.core.interfaces import (
    Capabilities,
    IndexStats,
    Key,
    UpdatableIndex,
    Value,
    check_sorted_unique,
)
from repro.errors import InvalidConfigurationError
from repro.perf.context import PerfContext
from repro.obs.trace import EventType
from repro.perf.events import Event

_PAIR_BYTES = 16
_DELTA_BYTES = 32


class _Delta:
    __slots__ = ("kind", "key", "value", "next")

    def __init__(self, kind: str, key: Key, value: Any, nxt):
        self.kind = kind  # "ins" | "del"
        self.key = key
        self.value = value
        self.next = nxt


class _Base:
    __slots__ = ("keys", "values")

    def __init__(self, keys: List[Key], values: List[Any]):
        self.keys = keys
        self.values = values


class BwTree(UpdatableIndex):
    """Bw-tree leaf layer behind a fence directory."""

    name = "Bwtree"

    def __init__(
        self,
        node_size: int = 256,
        consolidate_after: int = 8,
        perf: Optional[PerfContext] = None,
    ):
        super().__init__(perf)
        if node_size < 8:
            raise InvalidConfigurationError("node_size must be >= 8")
        if consolidate_after < 1:
            raise InvalidConfigurationError("consolidate_after must be >= 1")
        self.node_size = node_size
        self.consolidate_after = consolidate_after
        self._mapping: List[Any] = []  # pid -> chain head (_Delta | _Base)
        self._chain_len: List[int] = []
        self._fences: List[Key] = []  # fences[i] = first key of pid i
        self._pids: List[int] = []  # fence order -> pid
        self._n = 0

    # -- construction ---------------------------------------------------

    def bulk_load(self, items: Sequence[Tuple[Key, Value]]) -> None:
        check_sorted_unique(items)
        self._mapping = []
        self._chain_len = []
        self._fences = []
        self._pids = []
        self._n = len(items)
        if not items:
            self._new_page([0], [None])
            self._n = 0
            # fence covers the whole key space; mark the sentinel empty
            self._mapping[0] = _Base([], [])
            return
        per_node = max(4, (self.node_size * 3) // 4)
        self.perf.charge(Event.KEY_MOVE, len(items))
        for start in range(0, len(items), per_node):
            chunk = items[start : start + per_node]
            self._new_page([k for k, _ in chunk], [v for _, v in chunk])

    def _new_page(self, keys: List[Key], values: List[Any]) -> int:
        pid = len(self._mapping)
        self._mapping.append(_Base(keys, values))
        self._chain_len.append(0)
        self.perf.charge(Event.ALLOC)
        pos = bisect_right(self._fences, keys[0])
        self._fences.insert(pos, keys[0])
        self._pids.insert(pos, pid)
        self.perf.charge(Event.KEY_MOVE, len(self._fences) - pos)
        return pid

    # -- traversal ----------------------------------------------------------

    #: Virtual inner-node fanout used to charge the multi-level descent.
    _INNER_FANOUT = 64

    def _route(self, key: Key) -> int:
        """Inner-structure lookup.

        In a real Bw-tree every level costs *two* cache misses — the
        mapping-table slot and the node it points to — which is the
        indirection tax that keeps Bw-tree reads below a plain B+tree
        throughout §III.  The fence directory here is flat, but the
        descent is charged per the real structure's levels.
        """
        charge = self.perf.charge
        n = max(2, len(self._fences))
        levels = max(1, math.ceil(math.log(n, self._INNER_FANOUT)))
        per_level_cmp = max(1, self._INNER_FANOUT.bit_length() - 1)
        for _ in range(levels):
            charge(Event.DRAM_HOP, 2)  # mapping slot + node
            charge(Event.COMPARE, per_level_cmp)
            charge(Event.DRAM_SEQ, per_level_cmp)
        lo, hi = 0, len(self._fences) - 1
        while lo < hi:
            mid = (lo + hi + 1) // 2
            if self._fences[mid] <= key:
                lo = mid
            else:
                hi = mid - 1
        return self._pids[lo]

    def _walk_chain(self, pid: int, key: Key):
        """Walk deltas newest-first; return ('hit', v) | ('del',) | base."""
        charge = self.perf.charge
        charge(Event.DRAM_HOP)  # mapping-table indirection
        node = self._mapping[pid]
        while isinstance(node, _Delta):
            charge(Event.DRAM_HOP)
            charge(Event.COMPARE)
            if node.key == key:
                if node.kind == "ins":
                    return ("hit", node.value)
                return ("del", None)
            node = node.next
        return node

    def _base_rank(self, base: _Base, key: Key) -> int:
        charge = self.perf.charge
        lo, hi = 0, len(base.keys) - 1
        ans = -1
        while lo <= hi:
            mid = (lo + hi) // 2
            charge(Event.COMPARE)
            charge(Event.DRAM_SEQ)
            if base.keys[mid] <= key:
                ans = mid
                lo = mid + 1
            else:
                hi = mid - 1
        return ans

    # -- queries ----------------------------------------------------------

    def get(self, key: Key) -> Optional[Value]:
        pid = self._route(key)
        result = self._walk_chain(pid, key)
        if isinstance(result, tuple):
            return result[1] if result[0] == "hit" else None
        idx = self._base_rank(result, key)
        if idx >= 0 and result.keys[idx] == key:
            return result.values[idx]
        return None

    def _page_items(self, pid: int) -> List[Tuple[Key, Any]]:
        """Logical content of a page: base folded with its deltas."""
        deltas: List[_Delta] = []
        node = self._mapping[pid]
        while isinstance(node, _Delta):
            self.perf.charge(Event.DRAM_HOP)
            deltas.append(node)
            node = node.next
        merged = dict(zip(node.keys, node.values))
        for delta in reversed(deltas):  # oldest first, newest overrides
            if delta.kind == "ins":
                merged[delta.key] = delta.value
            else:
                merged.pop(delta.key, None)
        return sorted(merged.items())

    def range(self, lo: Key, hi: Key) -> Iterator[Tuple[Key, Value]]:
        if not self._fences:
            return
        start = bisect_right(self._fences, lo) - 1
        for pos in range(max(0, start), len(self._pids)):
            if self._fences[pos] > hi:
                return
            for key, value in self._page_items(self._pids[pos]):
                if key > hi:
                    return
                if key >= lo:
                    self.perf.charge(Event.DRAM_SEQ)
                    yield key, value

    def __len__(self) -> int:
        return self._n

    # -- mutation -----------------------------------------------------------

    def _exists(self, pid: int, key: Key) -> bool:
        result = self._walk_chain(pid, key)
        if isinstance(result, tuple):
            return result[0] == "hit"
        idx = self._base_rank(result, key)
        return idx >= 0 and result.keys[idx] == key

    def insert(self, key: Key, value: Value) -> None:
        pid = self._route(key)
        existed = self._exists(pid, key)
        self.perf.charge(Event.ALLOC)
        self.perf.charge(Event.DRAM_SEQ)  # the CAS on the mapping slot
        self._mapping[pid] = _Delta("ins", key, value, self._mapping[pid])
        self._chain_len[pid] += 1
        if not existed:
            self._n += 1
        if self._chain_len[pid] >= self.consolidate_after:
            self._consolidate(pid)

    def delete(self, key: Key) -> bool:
        pid = self._route(key)
        if not self._exists(pid, key):
            return False
        self.perf.charge(Event.ALLOC)
        self.perf.charge(Event.DRAM_SEQ)
        self._mapping[pid] = _Delta("del", key, None, self._mapping[pid])
        self._chain_len[pid] += 1
        self._n -= 1
        if self._chain_len[pid] >= self.consolidate_after:
            self._consolidate(pid)
        return True

    def _consolidate(self, pid: int) -> None:
        items = self._page_items(pid)
        self.perf.trace(
            EventType.BUFFER_FLUSH,
            index=self.name,
            leaf=pid,
            keys=len(items),
            count=self._chain_len[pid],
            reason="delta_chain_limit",
        )
        self.perf.charge(Event.KEY_MOVE, len(items))
        self.perf.charge(Event.ALLOC)
        if len(items) > self.node_size:
            mid = len(items) // 2
            left, right = items[:mid], items[mid:]
            self._mapping[pid] = _Base(
                [k for k, _ in left], [v for _, v in left]
            )
            self._chain_len[pid] = 0
            self._new_page([k for k, _ in right], [v for _, v in right])
            self.perf.trace(
                EventType.LEAF_SPLIT,
                index=self.name,
                leaf=pid,
                key_lo=left[0][0],
                key_hi=right[-1][0],
                keys=len(items),
                count=2,
                reason="node_size_exceeded",
            )
        else:
            if items:
                self._mapping[pid] = _Base(
                    [k for k, _ in items], [v for _, v in items]
                )
            else:
                self._mapping[pid] = _Base([], [])
            self._chain_len[pid] = 0

    # -- metadata -----------------------------------------------------------

    def size_bytes(self) -> int:
        total = len(self._mapping) * 8 + len(self._fences) * _PAIR_BYTES
        for pid, head in enumerate(self._mapping):
            total += self._chain_len[pid] * _DELTA_BYTES
            node = head
            while isinstance(node, _Delta):
                node = node.next
            total += len(node.keys) * _PAIR_BYTES
        return total

    def stats(self) -> IndexStats:
        chains = self._chain_len or [0]
        return IndexStats(
            depth_avg=2.0 + sum(chains) / len(chains),
            depth_max=2 + max(chains),
            leaf_count=len(self._mapping),
        )

    @classmethod
    def capabilities(cls) -> Capabilities:
        return Capabilities(
            sorted_order=True,
            updatable=True,
            bounded_error=True,
            concurrent_read=True,
            concurrent_write=True,
            inner_node="mapping table",
            leaf_node="base + deltas",
            approximation="-",
            insertion="delta prepend",
            retraining="consolidation",
        )
