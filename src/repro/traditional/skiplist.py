"""LevelDB-style skip list.

Tower heights come from a deterministic seeded RNG (p = 1/2, max 32
levels).  Every forward step during a search is a pointer chase into an
unrelated allocation, so it charges a cache-missing hop — the reason skip
lists trail node-packed trees on lookup-heavy workloads throughout §III
while remaining respectable for inserts (no key shifting at all).
"""

from __future__ import annotations

import random
from typing import Any, Iterator, List, Optional, Sequence, Tuple

from repro.core.interfaces import (
    Capabilities,
    IndexStats,
    Key,
    UpdatableIndex,
    Value,
    check_sorted_unique,
)
from repro.obs.trace import EventType
from repro.perf.context import PerfContext
from repro.perf.events import Event

_MAX_LEVEL = 32
_NODE_BYTES = 24  # key + value pointer + tower base


class _Node:
    __slots__ = ("key", "value", "forward")

    def __init__(self, key: Key, value: Any, height: int):
        self.key = key
        self.value = value
        self.forward: List[Optional["_Node"]] = [None] * height


class SkipList(UpdatableIndex):
    """Deterministic-seeded skip list over uint64 keys."""

    name = "Skiplist"

    def __init__(self, seed: int = 0x5EED, perf: Optional[PerfContext] = None):
        super().__init__(perf)
        self._rng = random.Random(seed)
        self._head = _Node(-1, None, _MAX_LEVEL)
        self._level = 1
        self._n = 0
        self._tower_slots = _MAX_LEVEL

    def _random_height(self) -> int:
        height = 1
        while height < _MAX_LEVEL and self._rng.random() < 0.5:
            height += 1
        return height

    # -- construction ---------------------------------------------------

    def bulk_load(self, items: Sequence[Tuple[Key, Value]]) -> None:
        check_sorted_unique(items)
        self._head = _Node(-1, None, _MAX_LEVEL)
        self._level = 1
        self._n = 0
        self._tower_slots = _MAX_LEVEL
        # Append in order: O(1) amortised per key with a tail-pointer per
        # level, charged as one allocation + one link per node.
        tails: List[_Node] = [self._head] * _MAX_LEVEL
        self.perf.charge(Event.ALLOC, len(items))
        self.perf.charge(Event.KEY_MOVE, len(items))
        for key, value in items:
            height = self._random_height()
            node = _Node(key, value, height)
            self._tower_slots += height
            for lvl in range(height):
                tails[lvl].forward[lvl] = node
                tails[lvl] = node
            if height > self._level:
                self._level = height
        self._n = len(items)

    # -- traversal ----------------------------------------------------------

    def _find_predecessors(self, key: Key) -> List[_Node]:
        """Per-level predecessor nodes of ``key``, charging per hop."""
        charge = self.perf.charge
        update: List[_Node] = [self._head] * _MAX_LEVEL
        node = self._head
        for lvl in range(self._level - 1, -1, -1):
            nxt = node.forward[lvl]
            while nxt is not None and nxt.key < key:
                charge(Event.DRAM_HOP)
                charge(Event.COMPARE)
                node = nxt
                nxt = node.forward[lvl]
            charge(Event.COMPARE)
            update[lvl] = node
        return update

    def get(self, key: Key) -> Optional[Value]:
        update = self._find_predecessors(key)
        node = update[0].forward[0]
        self.perf.charge(Event.DRAM_HOP)
        if node is not None and node.key == key:
            self.perf.charge(Event.COMPARE)
            return node.value
        return None

    def range(self, lo: Key, hi: Key) -> Iterator[Tuple[Key, Value]]:
        update = self._find_predecessors(lo)
        node = update[0].forward[0]
        while node is not None and node.key <= hi:
            self.perf.charge(Event.DRAM_HOP)
            yield node.key, node.value
            node = node.forward[0]

    def __len__(self) -> int:
        return self._n

    # -- mutation -----------------------------------------------------------

    def insert(self, key: Key, value: Value) -> None:
        update = self._find_predecessors(key)
        node = update[0].forward[0]
        if node is not None and node.key == key:
            node.value = value
            return
        height = self._random_height()
        if height > self._level:
            self._level = height
        new = _Node(key, value, height)
        self._tower_slots += height
        self.perf.charge(Event.ALLOC)
        self.perf.trace(
            EventType.NODE_ALLOC,
            index=self.name,
            key_lo=key,
            keys=1,
            count=height,
            reason="tower",
        )
        for lvl in range(height):
            new.forward[lvl] = update[lvl].forward[lvl]
            update[lvl].forward[lvl] = new
            self.perf.charge(Event.DRAM_SEQ)
        self._n += 1

    def delete(self, key: Key) -> bool:
        update = self._find_predecessors(key)
        node = update[0].forward[0]
        if node is None or node.key != key:
            return False
        for lvl in range(len(node.forward)):
            if update[lvl].forward[lvl] is node:
                update[lvl].forward[lvl] = node.forward[lvl]
                self.perf.charge(Event.DRAM_SEQ)
        self._tower_slots -= len(node.forward)
        self._n -= 1
        return True

    # -- metadata -----------------------------------------------------------

    def size_bytes(self) -> int:
        return self._n * _NODE_BYTES + self._tower_slots * 8

    def stats(self) -> IndexStats:
        return IndexStats(
            depth_avg=float(self._level),
            depth_max=self._level,
            leaf_count=self._n,
        )

    @classmethod
    def capabilities(cls) -> Capabilities:
        return Capabilities(
            sorted_order=True,
            updatable=True,
            bounded_error=True,
            concurrent_read=True,
            concurrent_write=False,
            inner_node="towers",
            leaf_node="linked nodes",
            approximation="-",
            insertion="link splice",
            retraining="-",
        )
