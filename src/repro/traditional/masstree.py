"""Masstree: a trie of B+trees over 8-byte key slices.

Each trie layer is a B+tree keyed by one 8-byte slice of the key (fanout
15, as in the original).  Keys that share a full slice but diverge later
push a new layer; unique suffixes are stored inline without creating
layers (Masstree's suffix optimisation).  Fixed 8-byte integer keys — the
paper's workloads — live entirely in layer 0, but the layering logic is
fully implemented and exercised by tests with longer byte keys.
"""

from __future__ import annotations

from typing import Any, Iterator, Optional, Sequence, Tuple

from repro.core.interfaces import (
    Capabilities,
    IndexStats,
    Key,
    UpdatableIndex,
    Value,
    check_sorted_unique,
)
from repro.perf.context import PerfContext
from repro.traditional.btree import BPlusTree

_FANOUT = 15


def _chunk_code(chunk: bytes) -> int:
    """Order-preserving integer encoding of a <= 8-byte slice.

    The slice is zero-padded to 8 bytes and its true length appended as a
    4-bit tiebreaker, so ``"abc" < "abc\\0" < "abd"`` sorts correctly.
    """
    padded = int.from_bytes(chunk.ljust(8, b"\x00"), "big")
    return (padded << 4) | len(chunk)


class _InlineEntry:
    """A key that terminates in this layer: remaining suffix + value."""

    __slots__ = ("suffix", "value")

    def __init__(self, suffix: bytes, value: Any):
        self.suffix = suffix
        self.value = value


class _LayerEntry:
    """Several keys share this slice and continue in a deeper layer."""

    __slots__ = ("layer",)

    def __init__(self, layer: "_Layer"):
        self.layer = layer


class _Layer:
    def __init__(self, perf: PerfContext):
        self.tree = BPlusTree(fanout=_FANOUT, perf=perf)


class Masstree(UpdatableIndex):
    """Masstree over uint64 keys (byte-key API available as *_bytes)."""

    name = "Masstree"

    def __init__(self, perf: Optional[PerfContext] = None):
        super().__init__(perf)
        self._root = _Layer(self.perf)
        self._n = 0

    # -- byte-key core -----------------------------------------------------

    def get_bytes(self, key: bytes) -> Optional[Any]:
        layer = self._root
        offset = 0
        while True:
            chunk = key[offset : offset + 8]
            entry = layer.tree.get(_chunk_code(chunk))
            if entry is None:
                return None
            if isinstance(entry, _InlineEntry):
                if entry.suffix == key[offset + 8 :]:
                    return entry.value
                return None
            layer = entry.layer
            offset += 8

    def put_bytes(self, key: bytes, value: Any) -> bool:
        """Insert/overwrite; returns True if the key is new."""
        layer = self._root
        offset = 0
        while True:
            chunk = key[offset : offset + 8]
            code = _chunk_code(chunk)
            entry = layer.tree.get(code)
            if entry is None:
                layer.tree.insert(
                    code, _InlineEntry(key[offset + 8 :], value)
                )
                return True
            if isinstance(entry, _LayerEntry):
                layer = entry.layer
                offset += 8
                continue
            # Inline entry with the same slice.
            remaining = key[offset + 8 :]
            if entry.suffix == remaining:
                entry.value = value
                return False
            # Divergent suffixes: push both keys into a new layer.
            sub = _Layer(self.perf)
            layer.tree.insert(code, _LayerEntry(sub))
            old_suffix, old_value = entry.suffix, entry.value
            sub.tree.insert(
                _chunk_code(old_suffix[:8]),
                _InlineEntry(old_suffix[8:], old_value),
            )
            layer = sub
            offset += 8

    def delete_bytes(self, key: bytes) -> bool:
        layer = self._root
        offset = 0
        while True:
            chunk = key[offset : offset + 8]
            code = _chunk_code(chunk)
            entry = layer.tree.get(code)
            if entry is None:
                return False
            if isinstance(entry, _InlineEntry):
                if entry.suffix == key[offset + 8 :]:
                    return layer.tree.delete(code)
                return False
            layer = entry.layer
            offset += 8

    # -- Index interface (uint64 keys, single layer) ------------------------

    @staticmethod
    def _encode(key: Key) -> bytes:
        return int(key).to_bytes(8, "big")

    def bulk_load(self, items: Sequence[Tuple[Key, Value]]) -> None:
        check_sorted_unique(items)
        self._root = _Layer(self.perf)
        self._root.tree.bulk_load(
            [
                (_chunk_code(self._encode(k)), _InlineEntry(b"", v))
                for k, v in items
            ]
        )
        self._n = len(items)

    def get(self, key: Key) -> Optional[Value]:
        return self.get_bytes(self._encode(key))

    def insert(self, key: Key, value: Value) -> None:
        if self.put_bytes(self._encode(key), value):
            self._n += 1

    def delete(self, key: Key) -> bool:
        if self.delete_bytes(self._encode(key)):
            self._n -= 1
            return True
        return False

    def range(self, lo: Key, hi: Key) -> Iterator[Tuple[Key, Value]]:
        # uint64 keys all sit in layer 0 with empty suffixes, so the
        # layer-0 B+tree's order is the key order.
        code_lo = _chunk_code(self._encode(lo))
        code_hi = _chunk_code(self._encode(hi))
        for code, entry in self._root.tree.range(code_lo, code_hi):
            key = int.from_bytes((code >> 4).to_bytes(8, "big"), "big")
            if isinstance(entry, _InlineEntry):
                yield key, entry.value

    def __len__(self) -> int:
        return self._n

    # -- metadata -----------------------------------------------------------

    def size_bytes(self) -> int:
        return self._size_of_layer(self._root)

    def _size_of_layer(self, layer: _Layer) -> int:
        total = layer.tree.size_bytes()
        for _, entry in layer.tree.range(0, (1 << 68) + 15):
            if isinstance(entry, _LayerEntry):
                total += self._size_of_layer(entry.layer)
        return total

    def stats(self) -> IndexStats:
        inner = self._root.tree.stats()
        return IndexStats(
            depth_avg=inner.depth_avg,
            depth_max=inner.depth_max,
            leaf_count=inner.leaf_count,
        )

    @classmethod
    def capabilities(cls) -> Capabilities:
        return Capabilities(
            sorted_order=True,
            updatable=True,
            bounded_error=True,
            concurrent_read=True,
            concurrent_write=True,
            inner_node="trie of B+trees",
            leaf_node="sorted array",
            approximation="-",
            insertion="node split",
            retraining="-",
        )
