"""Wormhole: hash-accelerated trie (MetaTrieHash) over sorted leaves.

Point lookups binary-search the *prefix length* of the key against a hash
table of leaf-anchor prefixes — O(log keylen) hash probes, i.e. ~3 for
8-byte keys — then search one sorted leaf.  That makes Wormhole the
fastest *ordered* traditional index in the paper's read figures, while
bulk building is a single packing pass (fast recovery, Fig 16).

Cost-model note (see DESIGN.md): the MetaTrieHash routing is charged per
Wormhole's algorithm (log2(keylen) hash probes + table hops); the anchor
bookkeeping that backs those probes is held in a sorted fence directory,
which yields identical routing results.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Any, Iterator, List, Optional, Sequence, Tuple

from repro.core.interfaces import (
    Capabilities,
    IndexStats,
    Key,
    UpdatableIndex,
    Value,
    check_sorted_unique,
)
from repro.errors import InvalidConfigurationError
from repro.perf.context import PerfContext
from repro.obs.trace import EventType
from repro.perf.events import Event

_PAIR_BYTES = 16
_ANCHOR_PREFIXES = 8  # prefixes registered per anchor (1..8 bytes)
_PROBES_PER_LOOKUP = 3  # ceil(log2(8)) binary search on prefix length


class _Leaf:
    __slots__ = ("keys", "values")

    def __init__(self, keys: List[Key], values: List[Any]):
        self.keys = keys
        self.values = values


class Wormhole(UpdatableIndex):
    """Sorted leaves behind a hash-probed anchor directory."""

    name = "Wormhole"

    def __init__(self, leaf_size: int = 128, perf: Optional[PerfContext] = None):
        super().__init__(perf)
        if leaf_size < 4:
            raise InvalidConfigurationError("leaf_size must be >= 4")
        self.leaf_size = leaf_size
        self._fences: List[Key] = []
        self._leaves: List[_Leaf] = []
        self._n = 0

    # -- construction ---------------------------------------------------

    def bulk_load(self, items: Sequence[Tuple[Key, Value]]) -> None:
        check_sorted_unique(items)
        self._fences = []
        self._leaves = []
        self._n = len(items)
        if not items:
            return
        per_leaf = max(2, (self.leaf_size * 3) // 4)
        self.perf.charge(Event.KEY_MOVE, len(items))
        for start in range(0, len(items), per_leaf):
            chunk = items[start : start + per_leaf]
            self._leaves.append(
                _Leaf([k for k, _ in chunk], [v for _, v in chunk])
            )
            self._fences.append(chunk[0][0])
        # Registering each anchor's prefixes in the MetaTrieHash.
        self.perf.charge(Event.HASH, len(self._leaves) * _ANCHOR_PREFIXES)
        self.perf.charge(Event.ALLOC, len(self._leaves))

    # -- traversal ----------------------------------------------------------

    def _route(self, key: Key) -> int:
        """MetaTrieHash longest-prefix-match: log2(keylen) hash probes."""
        charge = self.perf.charge
        for _ in range(_PROBES_PER_LOOKUP):
            charge(Event.HASH)
            charge(Event.DRAM_HOP)
        idx = bisect_right(self._fences, key) - 1
        return max(0, idx)

    def _leaf_rank(self, leaf: _Leaf, key: Key) -> int:
        charge = self.perf.charge
        charge(Event.DRAM_HOP)
        lo, hi = 0, len(leaf.keys) - 1
        ans = -1
        while lo <= hi:
            mid = (lo + hi) // 2
            charge(Event.COMPARE)
            charge(Event.DRAM_SEQ)
            if leaf.keys[mid] <= key:
                ans = mid
                lo = mid + 1
            else:
                hi = mid - 1
        return ans

    # -- queries ----------------------------------------------------------

    def get(self, key: Key) -> Optional[Value]:
        # Point lookups use the leaf's hash tags (Wormhole leaves keep a
        # small in-leaf hash of their keys): one hash, one or two line
        # touches — no binary search needed for an exact match.
        if not self._leaves:
            return None
        leaf = self._leaves[self._route(key)]
        charge = self.perf.charge
        charge(Event.DRAM_HOP)
        charge(Event.HASH)
        charge(Event.COMPARE, 2)
        charge(Event.DRAM_SEQ)
        idx = bisect_right(leaf.keys, key) - 1
        if idx >= 0 and leaf.keys[idx] == key:
            return leaf.values[idx]
        return None

    def range(self, lo: Key, hi: Key) -> Iterator[Tuple[Key, Value]]:
        if not self._leaves:
            return
        pos = self._route(lo)
        leaf = self._leaves[pos]
        idx = self._leaf_rank(leaf, lo)
        if idx < 0 or leaf.keys[idx] < lo:
            idx += 1
        while pos < len(self._leaves):
            leaf = self._leaves[pos]
            while idx < len(leaf.keys):
                if leaf.keys[idx] > hi:
                    return
                self.perf.charge(Event.DRAM_SEQ)
                yield leaf.keys[idx], leaf.values[idx]
                idx += 1
            pos += 1
            idx = 0
            if pos < len(self._leaves):
                self.perf.charge(Event.DRAM_HOP)

    def __len__(self) -> int:
        return self._n

    # -- mutation -----------------------------------------------------------

    def insert(self, key: Key, value: Value) -> None:
        if not self._leaves:
            self._leaves = [_Leaf([key], [value])]
            self._fences = [key]
            self._n = 1
            self.perf.charge(Event.ALLOC)
            self.perf.charge(Event.HASH, _ANCHOR_PREFIXES)
            return
        pos = self._route(key)
        leaf = self._leaves[pos]
        idx = self._leaf_rank(leaf, key)
        if idx >= 0 and leaf.keys[idx] == key:
            leaf.values[idx] = value
            return
        insert_at = idx + 1
        self.perf.charge(Event.KEY_MOVE, len(leaf.keys) - insert_at)
        leaf.keys.insert(insert_at, key)
        leaf.values.insert(insert_at, value)
        self._n += 1
        if len(leaf.keys) > self.leaf_size:
            self._split(pos)

    def _split(self, pos: int) -> None:
        leaf = self._leaves[pos]
        mid = len(leaf.keys) // 2
        right = _Leaf(leaf.keys[mid:], leaf.values[mid:])
        leaf.keys = leaf.keys[:mid]
        leaf.values = leaf.values[:mid]
        self._leaves.insert(pos + 1, right)
        self._fences.insert(pos + 1, right.keys[0])
        self.perf.charge(Event.ALLOC)
        self.perf.charge(Event.KEY_MOVE, len(right.keys))
        # New anchor registered in the MetaTrieHash.
        self.perf.charge(Event.HASH, _ANCHOR_PREFIXES)
        self.perf.trace(
            EventType.LEAF_SPLIT,
            index=self.name,
            leaf=pos,
            key_lo=leaf.keys[0] if leaf.keys else None,
            key_hi=right.keys[-1],
            keys=len(leaf.keys) + len(right.keys),
            count=2,
            reason="leaf_size_exceeded",
        )

    def delete(self, key: Key) -> bool:
        if not self._leaves:
            return False
        leaf = self._leaves[self._route(key)]
        idx = self._leaf_rank(leaf, key)
        if idx < 0 or leaf.keys[idx] != key:
            return False
        self.perf.charge(Event.KEY_MOVE, len(leaf.keys) - idx - 1)
        del leaf.keys[idx]
        del leaf.values[idx]
        self._n -= 1
        return True

    # -- metadata -----------------------------------------------------------

    def size_bytes(self) -> int:
        slots = sum(len(leaf.keys) for leaf in self._leaves)
        anchors = len(self._leaves) * _ANCHOR_PREFIXES * 12
        return slots * _PAIR_BYTES + anchors

    def stats(self) -> IndexStats:
        return IndexStats(
            depth_avg=2.0,
            depth_max=2,
            leaf_count=len(self._leaves),
        )

    @classmethod
    def capabilities(cls) -> Capabilities:
        return Capabilities(
            sorted_order=True,
            updatable=True,
            bounded_error=True,
            concurrent_read=True,
            concurrent_write=False,
            inner_node="MetaTrieHash",
            leaf_node="sorted array",
            approximation="-",
            insertion="leaf split",
            retraining="-",
        )
