"""Causal span tracing: request -> batch -> shard -> worker -> event.

The PR 4 tracer answers "which lifecycle events fired"; this module
answers "*whose* request paid for them".  A :class:`Span` is a named
interval with an explicit parent, so one logical request through the
process-parallel serving engine becomes a tree:

* **request** — one public API call on the engine (``get_many``,
  ``insert_many``, ``scan_many``, ``bulk_load``, a scalar ``get``...).
* **batch** — one shipped chunk of the request (the engine macro-chunks
  large batches at the shared-memory segment capacity).
* **shard** — one worker shipment inside a chunk, measured parent-side
  from send to reply (transport + queueing + worker time).
* **worker** — the command execution inside the worker process,
  measured worker-side (ships back through ``drain_obs``).
* **event** — a structural lifecycle event (RETRAIN, LATCH_WAIT,
  NODE_ALLOC...) that fired while the worker span was active, attached
  via :meth:`SpanRecorder.bind_tracer`.

Sampling is **head-based** and reuses the PR 4 Tracer seed discipline:
the decision is made once per request from a seeded
``random.Random`` — either the whole tree is recorded or none of it —
and :attr:`SpanRecorder.requests` counts every request exactly at any
rate, so span counts can be pinned against untraced counters.

Span ids are deterministic ``"<prefix>-<seq>"`` strings; each process
uses its own prefix (parent ``p``, worker ``w3``, simulator ``sim``),
so ids stay globally unique after a cross-process
:meth:`SpanRecorder.absorb` without any coordination.

Wall timestamps come from ``time.perf_counter()``.  On Linux that is
``CLOCK_MONOTONIC``, which is shared across processes, so parent and
worker spans nest naturally; exporters re-align children into their
parents when a platform's per-process epochs disagree
(:func:`repro.obs.export.chrome_trace_events`).
"""

from __future__ import annotations

import random
import time
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, Iterable, List, Optional

#: The span taxonomy, outermost first (see module docstring).
SPAN_KINDS = ("request", "batch", "shard", "worker", "event")


def _now_ns() -> float:
    return time.perf_counter() * 1e9


@dataclass
class Span:
    """One named interval in a request's causal tree."""

    #: Globally unique id, ``"<process prefix>-<seq>"``.
    span_id: str
    #: Parent span id; ``None`` for request roots (and for event spans
    #: whose emitting command was not part of a sampled request).
    parent_id: Optional[str]
    #: Human-readable name, e.g. ``"request:get_many"``, ``"shard:1"``.
    name: str
    #: One of :data:`SPAN_KINDS`.
    kind: str
    #: Start timestamp in nanoseconds (wall or simulated per ``clock``).
    start_ns: float
    #: Duration in nanoseconds (0 for point events).
    dur_ns: float = 0.0
    #: ``"wall"`` (perf_counter) or ``"sim"`` (the simulated clock).
    clock: str = "wall"
    #: Worker process that executed this span (-1 = the parent process).
    worker: int = -1
    #: Free-form payload (op counts, sim costs, event reasons...).
    attrs: Dict[str, Any] = field(default_factory=dict)

    @property
    def end_ns(self) -> float:
        return self.start_ns + self.dur_ns

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, d: dict) -> "Span":
        return cls(**d)


class SpanRecorder:
    """Collector of :class:`Span` records with head-based sampling.

    Parameters
    ----------
    rate:
        Probability a *request* (span-tree root) is recorded; children
        inherit the root's decision.  1.0 records everything, 0.0
        records nothing but still counts requests exactly.
    seed:
        Seed for the sampling RNG (same discipline as
        :class:`~repro.obs.trace.Tracer`: deterministic per seed).
    prefix:
        Id prefix for spans allocated by this recorder; must be unique
        per process (the parallel engine uses ``p`` parent-side and
        ``w<id>`` per worker).
    worker:
        Default ``Span.worker`` for spans this recorder creates.
    """

    def __init__(
        self,
        rate: float = 1.0,
        seed: int = 0,
        prefix: str = "p",
        worker: int = -1,
    ):
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"sampling rate must be in [0, 1], got {rate}")
        self.rate = rate
        self.prefix = prefix
        self.worker = worker
        self._rng = random.Random(seed)
        self._seq = 0
        #: Exact number of requests offered to :meth:`sample` (pre-sampling).
        self.requests = 0
        #: Number of requests that passed sampling.
        self.sampled_requests = 0
        #: Finished spans, in completion order (absorbed spans appended).
        self.spans: List[Span] = []
        #: The active span new event spans attach under (worker-side:
        #: the command currently being served).
        self.current: Optional[Span] = None

    # -- allocation ----------------------------------------------------

    def next_id(self) -> str:
        self._seq += 1
        return f"{self.prefix}-{self._seq}"

    def sample(self) -> bool:
        """One head-based sampling decision; counts the request exactly."""
        self.requests += 1
        rate = self.rate
        if rate < 1.0 and (rate <= 0.0 or self._rng.random() >= rate):
            return False
        self.sampled_requests += 1
        return True

    def start(
        self,
        name: str,
        kind: str,
        parent: Optional[str] = None,
        worker: Optional[int] = None,
        **attrs,
    ) -> Span:
        """Open a span now; it is recorded when :meth:`finish` is called."""
        return Span(
            span_id=self.next_id(),
            parent_id=parent,
            name=name,
            kind=kind,
            start_ns=_now_ns(),
            worker=self.worker if worker is None else worker,
            attrs=dict(attrs),
        )

    def finish(self, span: Span, **attrs) -> Span:
        """Close ``span`` (duration = now - start) and record it."""
        span.dur_ns = max(0.0, _now_ns() - span.start_ns)
        if attrs:
            span.attrs.update(attrs)
        self.spans.append(span)
        return span

    def add(self, span: Span) -> None:
        """Record a pre-built span (simulator spans carry their own clock)."""
        self.spans.append(span)

    def event(
        self,
        name: str,
        parent: Optional[str],
        cost_ns: float = 0.0,
        worker: Optional[int] = None,
        **attrs,
    ) -> Span:
        """Record a point event under ``parent`` at the current wall time."""
        span = Span(
            span_id=self.next_id(),
            parent_id=parent,
            name=name,
            kind="event",
            start_ns=_now_ns(),
            dur_ns=0.0,
            worker=self.worker if worker is None else worker,
            attrs=dict(attrs, cost_ns=cost_ns),
        )
        self.spans.append(span)
        return span

    # -- tracer integration --------------------------------------------

    def bind_tracer(self, tracer) -> None:
        """Attach every *sampled* lifecycle event as an event span.

        The sink fires from ``Tracer.emit`` after the tracer's own
        sampling decision; the event span attaches under
        :attr:`current` (the command span being served), or parentless
        when no sampled request is active — lifecycle events are never
        silently dropped just because their request was not sampled.
        """

        def sink(ev) -> None:
            parent = self.current.span_id if self.current is not None else None
            self.event(
                f"event:{ev.etype}",
                parent,
                cost_ns=ev.cost_ns,
                etype=ev.etype,
                sim_ts_ns=ev.ts_ns,
                index=ev.index,
                reason=ev.reason,
                keys=ev.keys,
                count=ev.count,
            )

        tracer.add_sink(sink)

    # -- merging -------------------------------------------------------

    def absorb(self, spans: Iterable[Span]) -> int:
        """Fold another recorder's spans in (cross-process merge).

        Ids are globally unique by prefix, so no re-sequencing is
        needed — parent/child links across the process boundary stay
        valid.  Returns the number of spans absorbed.
        """
        n = 0
        for span in spans:
            self.spans.append(span)
            n += 1
        return n

    def __len__(self) -> int:
        return len(self.spans)


# ------------------------------------------------------------ tree tools


def children_index(spans: Iterable[Span]) -> Dict[Optional[str], List[Span]]:
    """``parent_id -> [children]`` in recorded order (roots under ``None``)."""
    index: Dict[Optional[str], List[Span]] = {}
    for span in spans:
        index.setdefault(span.parent_id, []).append(span)
    return index


def roots(spans: Iterable[Span]) -> List[Span]:
    """Tree roots: request spans, plus non-event spans whose parent is
    missing from the list (a partial trace still renders)."""
    spans = list(spans)
    known = {s.span_id for s in spans}
    return [
        s
        for s in spans
        if s.kind == "request"
        or (s.kind != "event" and (s.parent_id is None or s.parent_id not in known))
    ]


def walk(
    span: Span, index: Dict[Optional[str], List[Span]]
) -> Iterable[Span]:
    """Yield ``span`` and every descendant, depth-first."""
    yield span
    for child in index.get(span.span_id, ()):  # pragma: no branch
        yield from walk(child, index)


def subtree_events(
    span: Span, index: Dict[Optional[str], List[Span]]
) -> List[Span]:
    """Every event-kind span reachable from ``span``."""
    return [s for s in walk(span, index) if s.kind == "event"]


def summarize_spans(spans: Iterable[Span]) -> Dict[str, dict]:
    """Per-kind ``{"spans": n, "dur_ns": total}`` plus per-event-type
    counts under the ``"events"`` key."""
    out: Dict[str, dict] = {
        kind: {"spans": 0, "dur_ns": 0.0} for kind in SPAN_KINDS
    }
    events: Dict[str, int] = {}
    for span in spans:
        agg = out.setdefault(span.kind, {"spans": 0, "dur_ns": 0.0})
        agg["spans"] += 1
        agg["dur_ns"] += span.dur_ns
        if span.kind == "event":
            etype = span.attrs.get("etype", span.name)
            events[etype] = events.get(etype, 0) + 1
    out["events"] = events
    return {k: v for k, v in out.items() if v and (k == "events" or v["spans"])}
