"""Bench-regression tool: diff committed ``BENCH_*.json`` across PRs.

Usage::

    python -m repro.obs.regress BENCH_PR2.json BENCH_PR3.json [...]
    python -m repro.obs.regress --threshold 0.05 OLD.json NEW.json

Each adjacent pair of reports (``benchmarks/bench_micro.py --out``
format) is compared index-by-index over the wall-clock metrics both
reports share.  All tracked metrics are higher-is-better (``*_ops_s``,
``*_keys_s``, ``*_speedup``); a metric that dropped by more than the
noise threshold is a regression, and any regression makes the process
exit non-zero — the contract the CI ``bench-regress`` step relies on.

Reports measured at different scales (e.g. a ``--quick`` CI run against
a committed full-scale baseline) are not comparable on absolute ops/s,
so the tool automatically restricts those pairs to the dimensionless
``*_speedup`` ratios and applies the looser ``--ratio-threshold``
(batch-vs-scalar ratios shift with scale and machine; only a collapse is
meaningful).
"""

from __future__ import annotations

import argparse
import json
import math
import sys
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

#: Default noise threshold: a shared-scale metric may drop 10% before it
#: counts as a regression (run-to-run wall-clock noise on shared CI
#: runners routinely reaches several percent).
DEFAULT_THRESHOLD = 0.10
#: Threshold for dimensionless speedup ratios when scales differ.
DEFAULT_RATIO_THRESHOLD = 0.50

#: Metric-name suffixes the tool tracks; all are higher-is-better.
METRIC_SUFFIXES = ("_ops_s", "_keys_s", "_speedup")
RATIO_SUFFIXES = ("_speedup",)


@dataclass
class Delta:
    """One metric compared across two reports."""

    index: str
    metric: str
    old: float
    new: float

    @property
    def change(self) -> float:
        """Fractional change; -0.25 means the metric dropped 25%."""
        return (self.new - self.old) / self.old if self.old else 0.0


def load_report(path: str) -> dict:
    with open(path) as fp:
        report = json.load(fp)
    if "indexes" not in report or not isinstance(report["indexes"], dict):
        raise ValueError(f"{path}: not a bench_micro report (no 'indexes')")
    return report


def _same_scale(old: dict, new: dict) -> bool:
    old_scale = old.get("scale", {})
    new_scale = new.get("scale", {})
    shared = set(old_scale) & set(new_scale)
    return bool(shared) and all(old_scale[k] == new_scale[k] for k in shared)


def compare_reports(
    old: dict,
    new: dict,
    threshold: float,
    ratio_threshold: float,
    skipped: Optional[List[str]] = None,
) -> Tuple[List[Delta], List[Delta], bool]:
    """Compare two loaded reports.

    Returns ``(all_deltas, regressions, ratios_only)`` over the indexes
    and metrics present in both reports.

    A metric whose baseline is 0 or non-finite (NaN/inf — e.g. a
    zero-duration quick run or a failed measurement) has no meaningful
    fractional change; it is skipped rather than compared, and a warning
    string is appended to ``skipped`` when the caller passes a list.
    """
    ratios_only = not _same_scale(old, new)
    suffixes = RATIO_SUFFIXES if ratios_only else METRIC_SUFFIXES
    limit = ratio_threshold if ratios_only else threshold
    deltas: List[Delta] = []
    regressions: List[Delta] = []
    for name in sorted(set(old["indexes"]) & set(new["indexes"])):
        old_row, new_row = old["indexes"][name], new["indexes"][name]
        for metric in sorted(set(old_row) & set(new_row)):
            if not metric.endswith(suffixes):
                continue
            old_v, new_v = old_row[metric], new_row[metric]
            if not isinstance(old_v, (int, float)) or not isinstance(
                new_v, (int, float)
            ):
                continue
            old_f, new_f = float(old_v), float(new_v)
            if old_f == 0.0 or not math.isfinite(old_f) or not math.isfinite(new_f):
                if skipped is not None:
                    skipped.append(
                        f"{name}.{metric}: baseline {old_f!r} -> {new_f!r} "
                        "not comparable; skipped"
                    )
                continue
            delta = Delta(name, metric, old_f, new_f)
            deltas.append(delta)
            if delta.old > 0 and delta.change < -limit:
                regressions.append(delta)
    return deltas, regressions, ratios_only


def _pair_report(
    old_path: str,
    new_path: str,
    deltas: List[Delta],
    regressions: List[Delta],
    ratios_only: bool,
    limit: float,
) -> List[str]:
    lines = [f"{old_path} -> {new_path}"]
    if ratios_only:
        lines.append(
            "  scales differ: comparing *_speedup ratios only "
            f"(threshold {limit:.0%})"
        )
    if not deltas:
        lines.append("  no shared metrics to compare")
        return lines
    worst = sorted(deltas, key=lambda d: d.change)
    flagged = {id(d) for d in regressions}
    for d in worst[:8]:
        marker = "REGRESSION" if id(d) in flagged else "ok"
        lines.append(
            f"  [{marker:>10}] {d.index:<8} {d.metric:<22} "
            f"{d.old:>14,.2f} -> {d.new:>14,.2f}  ({d.change:+.1%})"
        )
    if len(worst) > 8:
        lines.append(f"  ... {len(worst) - 8} more metrics all within threshold")
    return lines


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.regress",
        description="Diff bench_micro JSON reports and flag regressions.",
    )
    parser.add_argument(
        "reports", nargs="+", help="bench_micro --out files, oldest first"
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_THRESHOLD,
        help="max fractional drop tolerated on same-scale metrics "
        f"(default {DEFAULT_THRESHOLD})",
    )
    parser.add_argument(
        "--ratio-threshold",
        type=float,
        default=DEFAULT_RATIO_THRESHOLD,
        help="max fractional drop tolerated on *_speedup ratios when "
        f"report scales differ (default {DEFAULT_RATIO_THRESHOLD})",
    )
    args = parser.parse_args(argv)
    if len(args.reports) < 2:
        parser.error("need at least two reports to compare")

    try:
        loaded = [(path, load_report(path)) for path in args.reports]
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    failed = False
    for (old_path, old), (new_path, new) in zip(loaded, loaded[1:]):
        skipped: List[str] = []
        deltas, regressions, ratios_only = compare_reports(
            old, new, args.threshold, args.ratio_threshold, skipped=skipped
        )
        for warning in skipped:
            print(f"warning: {warning}", file=sys.stderr)
        limit = args.ratio_threshold if ratios_only else args.threshold
        for line in _pair_report(
            old_path, new_path, deltas, regressions, ratios_only, limit
        ):
            print(line)
        if regressions:
            failed = True
    print(
        "FAIL: regressions beyond threshold"
        if failed
        else "OK: no regressions beyond threshold"
    )
    return 1 if failed else 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
