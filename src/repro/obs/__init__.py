"""Structural observability: lifecycle tracing, metrics, exporters.

The simulated-hardware substrate (:mod:`repro.perf`) answers "how much
did it cost"; this package answers "what happened and when":

* :mod:`repro.obs.trace` — typed lifecycle events (retrains, splits,
  flushes, allocations, GC) on the simulated clock, collected by a
  sampling-aware :class:`Tracer` attached to a ``PerfContext``.
* :mod:`repro.obs.metrics` — counters, gauges, and log-bucketed
  histograms with Prometheus-style label sets.
* :mod:`repro.obs.export` — JSONL trace files and Prometheus text.
* :mod:`repro.obs.progress` — live progress lines for long runs.
* :mod:`repro.obs.regress` — the ``BENCH_*.json`` cross-PR diff tool
  (``python -m repro.obs.regress``).

See ``docs/observability.md`` for the event taxonomy and usage.
"""

from repro.obs.trace import EventType, TraceEvent, Tracer
from repro.obs.metrics import Counter, Gauge, MetricsRegistry
from repro.obs.export import (
    JsonlTraceSink,
    prometheus_text,
    read_trace_jsonl,
    trace_summary,
    write_trace_jsonl,
)
from repro.obs.progress import ProgressReporter

__all__ = [
    "EventType",
    "TraceEvent",
    "Tracer",
    "Counter",
    "Gauge",
    "MetricsRegistry",
    "JsonlTraceSink",
    "prometheus_text",
    "read_trace_jsonl",
    "trace_summary",
    "write_trace_jsonl",
    "ProgressReporter",
]
