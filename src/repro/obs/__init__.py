"""Structural observability: lifecycle tracing, spans, metrics, exporters.

The simulated-hardware substrate (:mod:`repro.perf`) answers "how much
did it cost"; this package answers "what happened and when":

* :mod:`repro.obs.trace` — typed lifecycle events (retrains, splits,
  flushes, allocations, GC) on the simulated clock, collected by a
  sampling-aware :class:`Tracer` attached to a ``PerfContext``.
* :mod:`repro.obs.spans` — causal span trees (request -> batch -> shard
  -> worker -> event) with cross-process ids, for the parallel engine
  and the discrete-event simulator.
* :mod:`repro.obs.health` — per-worker heartbeats, stall detection, and
  flight-recorder postmortems for the parallel engine.
* :mod:`repro.obs.attribution` — tail-latency decomposition of span
  trees (queue / serialize / skew / struct / work).
* :mod:`repro.obs.metrics` — counters, gauges, and log-bucketed
  histograms with Prometheus-style label sets.
* :mod:`repro.obs.export` — JSONL trace/span files, Chrome trace-event
  JSON, and Prometheus text.
* :mod:`repro.obs.progress` — live progress lines for long runs, plus
  the :class:`EngineTopView` worker-health live view.
* :mod:`repro.obs.regress` — the ``BENCH_*.json`` cross-PR diff tool
  (``python -m repro.obs.regress``).

See ``docs/observability.md`` for the event taxonomy and usage.
"""

from repro.obs.trace import EventType, TraceEvent, Tracer
from repro.obs.metrics import Counter, Gauge, MetricsRegistry
from repro.obs.spans import (
    Span,
    SpanRecorder,
    children_index,
    roots,
    subtree_events,
    summarize_spans,
    walk,
)
from repro.obs.health import FlightEntry, HealthMonitor, WorkerHealth, format_flight
from repro.obs.attribution import (
    AttributionResult,
    RequestAttribution,
    attribute_request,
    attribute_spans,
)
from repro.obs.export import (
    JsonlTraceSink,
    chrome_trace_events,
    prometheus_text,
    read_spans_jsonl,
    read_trace_jsonl,
    trace_summary,
    write_chrome_trace,
    write_spans_jsonl,
    write_trace_jsonl,
)
from repro.obs.progress import EngineTopView, ProgressReporter

__all__ = [
    "EventType",
    "TraceEvent",
    "Tracer",
    "Counter",
    "Gauge",
    "MetricsRegistry",
    "Span",
    "SpanRecorder",
    "children_index",
    "roots",
    "subtree_events",
    "summarize_spans",
    "walk",
    "FlightEntry",
    "HealthMonitor",
    "WorkerHealth",
    "format_flight",
    "AttributionResult",
    "RequestAttribution",
    "attribute_request",
    "attribute_spans",
    "JsonlTraceSink",
    "chrome_trace_events",
    "prometheus_text",
    "read_spans_jsonl",
    "read_trace_jsonl",
    "trace_summary",
    "write_chrome_trace",
    "write_spans_jsonl",
    "write_trace_jsonl",
    "EngineTopView",
    "ProgressReporter",
]
