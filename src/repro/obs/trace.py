"""Structured lifecycle-event tracing for index internals.

The paper's structural claims — *which* dimension drives cost — hinge on
events that end-of-run aggregates flatten away: when retrains fire, how
splits cascade, where a buffer flush lands.  The tracer captures those
moments as typed records on the simulated clock.

Wiring: a :class:`Tracer` is attached to a
:class:`~repro.perf.context.PerfContext` (``perf.tracer = tracer``), and
every instrumentation site calls ``perf.trace(EventType.X, ...)`` — a
no-op attribute check when no tracer is attached, so the cost with
tracing off is negligible and no index needs new plumbing.

Sampling: ``Tracer(rate=0.01)`` records ~1% of events but **counts all
of them** — ``tracer.count(EventType.RETRAIN)`` is always exact, which
is what lets tests pin trace counts against the indexes' own internal
counters even when record storage is sampled down.
"""

from __future__ import annotations

import random
from dataclasses import asdict, dataclass
from typing import Callable, Dict, List, Optional


class EventType:
    """Lifecycle event taxonomy (see ``docs/observability.md``)."""

    #: A node/leaf/level was refit over its live keys.
    RETRAIN = "retrain"
    #: One leaf/node/segment became two or more.
    LEAF_SPLIT = "leaf_split"
    #: A leaf was removed and its fence forgotten (delete emptied it).
    LEAF_MERGE = "leaf_merge"
    #: Staged writes (delta chain, LSM buffer, leaf buffer) were folded
    #: into their base structure.
    BUFFER_FLUSH = "buffer_flush"
    #: Structural memory was allocated (nodes, pages, directory doubling).
    NODE_ALLOC = "node_alloc"
    #: The NVM store reclaimed dead record slots.
    NVM_GC = "nvm_gc"
    #: A refit model was rejected (error above threshold / insert
    #: pressure) and the node split instead of expanding.
    FIT_REJECT = "fit_reject"
    #: A simulated thread waited for a latch held by another thread
    #: (``cost_ns`` carries the wait; emitted by the concurrency
    #: simulator, :mod:`repro.concurrency.sim`).
    LATCH_WAIT = "latch_wait"
    #: A simulated thread stalled behind a blocking retrain (XIndex /
    #: FINEdex style); ``cost_ns`` carries the stall.
    RETRAIN_STALL = "retrain_stall"
    #: A parallel-engine worker (or simulated worker) died/timed out and
    #: a respawn was started; ``leaf`` is the worker id, ``reason`` is
    #: ``"died"``/``"timeout"``, ``cost_ns`` the projected rebuild cost
    #: when emitted by the simulator's failure model.
    WORKER_RESTART = "worker_restart"
    #: The respawned worker finished rebuild + replay and resumed
    #: serving; ``cost_ns`` carries the measured recovery wall ns.
    WORKER_RECOVERED = "worker_recovered"
    #: A worker exhausted its restart budget and its shard left service
    #: (``degraded="partial"``); ``leaf`` is the worker id.
    WORKER_DOWN = "worker_down"

    ALL = (
        RETRAIN,
        LEAF_SPLIT,
        LEAF_MERGE,
        BUFFER_FLUSH,
        NODE_ALLOC,
        NVM_GC,
        FIT_REJECT,
        LATCH_WAIT,
        RETRAIN_STALL,
        WORKER_RESTART,
        WORKER_RECOVERED,
        WORKER_DOWN,
    )


@dataclass
class TraceEvent:
    """One lifecycle event on the simulated clock."""

    #: Monotone per-tracer sequence number (order of emission).
    seq: int
    #: Simulated nanoseconds elapsed on the emitting context's clock.
    ts_ns: float
    #: One of :class:`EventType`.
    etype: str
    #: Name of the emitting index/store ("" when not applicable).
    index: str = ""
    #: Leaf/node/level position within the index (-1 when not applicable).
    leaf: int = -1
    #: Key range the event covered (None when unknown/not applicable).
    key_lo: Optional[int] = None
    key_hi: Optional[int] = None
    #: Why the event fired ("leaf_full", "lsm_carry", "pressure", ...).
    reason: str = ""
    #: Live keys involved (retrained keys, flushed entries, moved records).
    keys: int = 0
    #: Structural multiplicity (leaves produced, pages allocated, ...).
    count: int = 1
    #: Simulated-time cost delta of the operation that emitted the event.
    cost_ns: float = 0.0

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, d: dict) -> "TraceEvent":
        return cls(**d)


class Tracer:
    """Sampling-aware collector of :class:`TraceEvent` records.

    Parameters
    ----------
    rate:
        Default sampling rate in [0, 1]; 1.0 records every event.
    rates:
        Optional per-event-type overrides, e.g. ``{EventType.NODE_ALLOC:
        0.0}`` to count (but never store) chatty allocation events.
    seed:
        Seed for the sampling RNG — sampling decisions are deterministic.
    keep:
        Whether to retain sampled events in :attr:`records` (disable when
        a sink streams them to disk and memory matters).
    """

    def __init__(
        self,
        rate: float = 1.0,
        rates: Optional[Dict[str, float]] = None,
        seed: int = 0,
        keep: bool = True,
    ):
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"sampling rate must be in [0, 1], got {rate}")
        for etype, r in (rates or {}).items():
            if not 0.0 <= r <= 1.0:
                raise ValueError(
                    f"sampling rate for {etype!r} must be in [0, 1], got {r}"
                )
        self.rate = rate
        self.rates: Dict[str, float] = dict(rates or {})
        self.keep = keep
        self._rng = random.Random(seed)
        self._seq = 0
        #: Exact per-type emission counts (pre-sampling).
        self.counts: Dict[str, int] = {}
        #: Per-type counts of events that passed sampling.
        self.sampled: Dict[str, int] = {}
        #: Sampled events, in emission order (when ``keep``).
        self.records: List[TraceEvent] = []
        self._sinks: List[Callable[[TraceEvent], None]] = []

    def add_sink(self, sink: Callable[[TraceEvent], None]) -> None:
        """Stream every sampled event to ``sink`` as it is emitted."""
        self._sinks.append(sink)

    def emit(self, etype: str, ts_ns: float, **fields) -> None:
        """Count the event; record it if it passes sampling.

        Called via :meth:`repro.perf.context.PerfContext.trace`; the
        count is incremented *before* the sampling decision so counts
        stay exact at any rate.
        """
        self.counts[etype] = self.counts.get(etype, 0) + 1
        rate = self.rates.get(etype, self.rate)
        if rate < 1.0 and (rate <= 0.0 or self._rng.random() >= rate):
            return
        self._seq += 1
        event = TraceEvent(seq=self._seq, ts_ns=ts_ns, etype=etype, **fields)
        self.sampled[etype] = self.sampled.get(etype, 0) + 1
        if self.keep:
            self.records.append(event)
        for sink in self._sinks:
            sink(event)

    def absorb(
        self, counts: Dict[str, int], records: List[TraceEvent]
    ) -> None:
        """Fold another tracer's output into this one (cross-process merge).

        The parallel engine's workers each run their own tracer; at drain
        time the parent absorbs the workers' exact counts and sampled
        records.  Absorbed records are re-sequenced onto this tracer's
        monotone ``seq`` (their own emission order is preserved) and
        forwarded to any attached sinks, so a JSONL trace written by the
        parent includes worker-side lifecycle events.
        """
        for etype, n in counts.items():
            self.counts[etype] = self.counts.get(etype, 0) + n
        for record in records:
            self._seq += 1
            record.seq = self._seq
            self.sampled[record.etype] = self.sampled.get(record.etype, 0) + 1
            if self.keep:
                self.records.append(record)
            for sink in self._sinks:
                sink(record)

    def count(self, etype: str) -> int:
        """Exact number of ``etype`` emissions (independent of sampling)."""
        return self.counts.get(etype, 0)

    def total_count(self) -> int:
        return sum(self.counts.values())

    def summary(self) -> Dict[str, Dict[str, int]]:
        """Per-type ``{"emitted": exact, "sampled": stored}`` counts."""
        return {
            etype: {
                "emitted": self.counts.get(etype, 0),
                "sampled": self.sampled.get(etype, 0),
            }
            for etype in sorted(self.counts)
        }
