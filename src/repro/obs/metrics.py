"""Low-overhead metrics registry: counters, gauges, log-bucketed histograms.

The registry is the aggregate side of the observability layer (the trace
is the event side): named metrics with label sets, cheap to update on
hot paths, exported as Prometheus text or rendered by ``repro report``.

* :class:`Counter` — monotone float accumulator (ops executed, bytes).
* :class:`Gauge` — last-write-wins value (leaf count, buffer fill).
* Histograms are :class:`~repro.perf.histogram.LogHistogram` — the same
  backend :class:`~repro.perf.latency.LatencyRecorder` uses, so per-
  OpKind latency recorders merge straight into the registry.

Metric identity is ``(name, sorted label items)``, Prometheus-style:
``registry.counter("repro_ops_total", kind="read")`` and the same call
with ``kind="insert"`` are distinct time series of one metric family.
"""

from __future__ import annotations

import re
from typing import Dict, Iterator, Tuple

from repro.perf.histogram import LogHistogram

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

_LabelKey = Tuple[Tuple[str, str], ...]


class Counter:
    """Monotonically increasing accumulator."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, n: float = 1.0) -> None:
        if n < 0:
            raise ValueError(f"counters only go up, got {n}")
        self.value += n


class Gauge:
    """A value that can go up and down; last write wins."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, n: float = 1.0) -> None:
        self.value += n

    def dec(self, n: float = 1.0) -> None:
        self.value -= n


class MetricsRegistry:
    """Registered metric families, each a ``labels -> instrument`` map."""

    def __init__(self) -> None:
        # name -> (kind, {label_key: instrument}); insertion-ordered.
        self._families: Dict[str, Tuple[str, Dict[_LabelKey, object]]] = {}

    def _get(self, kind: str, factory, name: str, labels: Dict[str, str]):
        if not _NAME_RE.match(name):
            raise ValueError(f"bad metric name {name!r}")
        for label in labels:
            if not _LABEL_RE.match(label):
                raise ValueError(f"bad label name {label!r}")
        family = self._families.get(name)
        if family is None:
            family = self._families[name] = (kind, {})
        elif family[0] != kind:
            raise ValueError(
                f"metric {name!r} already registered as {family[0]}, not {kind}"
            )
        key = tuple(sorted((k, str(v)) for k, v in labels.items()))
        instrument = family[1].get(key)
        if instrument is None:
            instrument = family[1][key] = factory()
        return instrument

    def counter(self, name: str, **labels) -> Counter:
        return self._get("counter", Counter, name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get("gauge", Gauge, name, labels)

    def histogram(self, name: str, **labels) -> LogHistogram:
        return self._get("histogram", LogHistogram, name, labels)

    def merge_from(self, other: "MetricsRegistry") -> None:
        """Fold another registry's series into this one (cross-process merge).

        Counters and histograms accumulate; gauges are last-write-wins,
        so the other registry's value overwrites.  This is how the
        parallel engine's per-worker registries land in the parent at
        shutdown — series identity is ``(name, labels)``, so workers that
        label their series with ``worker=<id>`` stay distinct while
        unlabelled families simply sum.
        """
        for name, kind, labels, instrument in other.collect():
            if kind == "counter":
                self.counter(name, **labels).inc(instrument.value)
            elif kind == "gauge":
                self.gauge(name, **labels).set(instrument.value)
            else:
                self.histogram(name, **labels).merge(instrument)

    def collect(self) -> Iterator[Tuple[str, str, Dict[str, str], object]]:
        """Yield ``(name, kind, labels, instrument)`` for every series."""
        for name, (kind, series) in self._families.items():
            for key, instrument in sorted(series.items()):
                yield name, kind, dict(key), instrument

    def __len__(self) -> int:
        return sum(len(series) for _, series in self._families.values())
