"""Exporters: JSONL trace files and Prometheus-style text exposition.

Formats:

* **JSONL trace** — one :class:`~repro.obs.trace.TraceEvent` per line as
  a JSON object; round-trips exactly through
  :func:`write_trace_jsonl` / :func:`read_trace_jsonl`.
* **JSONL spans** — one :class:`~repro.obs.spans.Span` per line;
  round-trips through :func:`write_spans_jsonl` / :func:`read_spans_jsonl`.
* **Chrome trace-event JSON** — :func:`write_chrome_trace` renders a
  span list as a ``chrome://tracing`` / Perfetto-loadable timeline, one
  process row per engine process, one thread lane per worker.
* **Prometheus text** — ``# HELP``/``# TYPE`` headers, counters/gauges
  verbatim, histograms rendered as summaries (``quantile`` labels plus
  ``_sum``/``_count``), tracer lifecycle counts as
  ``repro_trace_events_total{event=...}``; label values are escaped.
"""

from __future__ import annotations

import json
from typing import Dict, IO, Iterable, List, Optional

from repro.obs.metrics import Counter, Gauge, MetricsRegistry
from repro.obs.spans import Span, children_index, roots
from repro.obs.trace import TraceEvent, Tracer
from repro.perf.histogram import LogHistogram

# ------------------------------------------------------------- JSONL trace


class JsonlTraceSink:
    """A tracer sink that streams each sampled event to a JSONL file.

    >>> sink = JsonlTraceSink(open("trace.jsonl", "w"))
    >>> tracer.add_sink(sink)
    ...
    >>> sink.close()
    """

    def __init__(self, fp: IO[str]):
        self._fp = fp

    def __call__(self, event: TraceEvent) -> None:
        self._fp.write(json.dumps(event.to_dict(), sort_keys=True) + "\n")

    def close(self) -> None:
        self._fp.close()


def write_trace_jsonl(events: Iterable[TraceEvent], path: str) -> int:
    """Write ``events`` to ``path`` as JSONL; returns the event count."""
    n = 0
    with open(path, "w") as fp:
        sink = JsonlTraceSink(fp)
        for event in events:
            sink(event)
            n += 1
    return n


def read_trace_jsonl(path: str) -> List[TraceEvent]:
    """Parse a JSONL trace file back into :class:`TraceEvent` records."""
    events: List[TraceEvent] = []
    with open(path) as fp:
        for line in fp:
            line = line.strip()
            if line:
                events.append(TraceEvent.from_dict(json.loads(line)))
    return events


def trace_summary(events: Iterable[TraceEvent]) -> Dict[str, dict]:
    """Aggregate a trace per event type: count, keys, cost, indexes.

    Computed from the *records* (not the tracer's exact counters), so a
    summary of events written to JSONL and a summary of the parsed file
    are identical — the round-trip contract the tests pin.
    """
    out: Dict[str, dict] = {}
    for event in events:
        agg = out.get(event.etype)
        if agg is None:
            agg = out[event.etype] = {
                "events": 0,
                "keys": 0,
                "count": 0,
                "cost_ns": 0.0,
                "by_index": {},
            }
        agg["events"] += 1
        agg["keys"] += event.keys
        agg["count"] += event.count
        agg["cost_ns"] += event.cost_ns
        by_index = agg["by_index"]
        by_index[event.index] = by_index.get(event.index, 0) + 1
    return out


# ------------------------------------------------------------ JSONL spans


def write_spans_jsonl(spans: Iterable[Span], path: str) -> int:
    """Write ``spans`` to ``path`` as JSONL; returns the span count."""
    n = 0
    with open(path, "w") as fp:
        for span in spans:
            fp.write(json.dumps(span.to_dict(), sort_keys=True) + "\n")
            n += 1
    return n


def read_spans_jsonl(path: str) -> List[Span]:
    """Parse a JSONL span file back into :class:`Span` records."""
    spans: List[Span] = []
    with open(path) as fp:
        for line in fp:
            line = line.strip()
            if line:
                spans.append(Span.from_dict(json.loads(line)))
    return spans


# ------------------------------------------------------ Chrome trace-event


def _span_pid(span: Span) -> int:
    """Process row: parent/simulator = 0, worker ``w<k>`` = k + 1."""
    prefix = span.span_id.split("-", 1)[0]
    if prefix.startswith("w") and prefix[1:].isdigit():
        return int(prefix[1:]) + 1
    return 0


def _span_tid(span: Span) -> int:
    """Thread lane inside the process row: request/batch work on lane 0,
    shard shipments on a per-worker lane so skew is visible at a glance."""
    if span.kind == "shard" and span.worker >= 0:
        return 1 + span.worker
    if span.kind in ("request", "batch") and span.worker >= 0:
        return 1 + span.worker  # sim ops: one lane per simulated thread
    return 0


def _align(spans: List[Span]) -> Dict[str, float]:
    """Per-span timestamp shifts nesting children into their parents.

    On Linux every process shares ``CLOCK_MONOTONIC``, so shifts are 0;
    on platforms where per-process ``perf_counter`` epochs differ, a
    child subtree starting outside its parent is slid to the parent's
    start so the rendered tree still nests.
    """
    index = children_index(spans)
    shift: Dict[str, float] = {}

    def visit(span: Span, offset: float) -> None:
        shift[span.span_id] = offset
        start = span.start_ns + offset
        end = span.end_ns + offset
        for child in index.get(span.span_id, ()):
            child_off = offset
            if child.start_ns + offset < start or child.start_ns + offset > end:
                child_off = offset + (start - child.start_ns)
            visit(child, child_off)

    for root in roots(spans):
        visit(root, 0.0)
    return shift


def chrome_trace_events(spans: Iterable[Span], align: bool = True) -> dict:
    """Render spans as a Chrome trace-event document (dict, JSON-ready).

    Interval spans become ``"X"`` complete events; event-kind spans
    become ``"i"`` instants.  Open the written file in
    ``chrome://tracing`` or https://ui.perfetto.dev.
    """
    spans = list(spans)
    shift = _align(spans) if align else {}
    events: List[dict] = []
    procs: Dict[int, str] = {}
    for span in spans:
        offset = shift.get(span.span_id, 0.0)
        pid = _span_pid(span)
        procs.setdefault(
            pid, "parent" if pid == 0 else f"worker {pid - 1}"
        )
        record = {
            "name": span.name,
            "cat": span.kind,
            "pid": pid,
            "tid": _span_tid(span),
            "ts": (span.start_ns + offset) / 1e3,  # trace-event ts is us
            "args": dict(
                span.attrs,
                span_id=span.span_id,
                parent_id=span.parent_id,
                clock=span.clock,
            ),
        }
        if span.kind == "event":
            record["ph"] = "i"
            record["s"] = "t"  # thread-scoped instant
        else:
            record["ph"] = "X"
            record["dur"] = span.dur_ns / 1e3
        events.append(record)
    for pid, label in sorted(procs.items()):
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": label},
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(spans: Iterable[Span], path: str) -> int:
    """Write spans to ``path`` as Chrome trace JSON; returns event count."""
    doc = chrome_trace_events(spans)
    with open(path, "w") as fp:
        json.dump(doc, fp)
    return len(doc["traceEvents"])


# ------------------------------------------------- Prometheus exposition

#: Quantiles a histogram family exposes in the text format.
SUMMARY_QUANTILES = (0.5, 0.99, 0.999)


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"')


def _labels_text(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{k}="{_escape(v)}"' for k, v in sorted(labels.items())
    )
    return "{" + inner + "}"


def _fmt(value: float) -> str:
    return repr(value) if isinstance(value, float) else str(value)


#: ``# HELP`` text for the metric families the library itself emits.
HELP_TEXT: Dict[str, str] = {
    "repro_ops_total": "Operations executed, by kind and target index.",
    "repro_op_latency_ns": "Simulated per-operation latency (ns).",
    "repro_trace_events_total": "Sampled lifecycle events, by event type.",
    "repro_worker_cmds_total": "Commands served by each shard worker.",
    "repro_worker_cmd_wall_ns": "Worker-side wall time per command (ns).",
}

_GENERIC_HELP = "repro metric (no description registered)."


def prometheus_text(
    registry: Optional[MetricsRegistry] = None,
    tracer: Optional[Tracer] = None,
) -> str:
    """Render metrics (and tracer lifecycle counts) as Prometheus text."""
    lines: List[str] = []
    seen_types = set()
    if registry is not None:
        for name, kind, labels, instrument in registry.collect():
            if name not in seen_types:
                seen_types.add(name)
                prom_kind = "summary" if kind == "histogram" else kind
                lines.append(
                    f"# HELP {name} {HELP_TEXT.get(name, _GENERIC_HELP)}"
                )
                lines.append(f"# TYPE {name} {prom_kind}")
            if isinstance(instrument, (Counter, Gauge)):
                lines.append(f"{name}{_labels_text(labels)} {_fmt(instrument.value)}")
            elif isinstance(instrument, LogHistogram):
                for q in SUMMARY_QUANTILES:
                    labelled = dict(labels, quantile=str(q))
                    value = instrument.quantile(q) if len(instrument) else "NaN"
                    lines.append(f"{name}{_labels_text(labelled)} {_fmt(value)}")
                lines.append(
                    f"{name}_sum{_labels_text(labels)} {_fmt(instrument.total)}"
                )
                lines.append(
                    f"{name}_count{_labels_text(labels)} {instrument.count}"
                )
    if tracer is not None:
        name = "repro_trace_events_total"
        lines.append(f"# HELP {name} {HELP_TEXT[name]}")
        lines.append(f"# TYPE {name} counter")
        for etype in sorted(tracer.counts):
            lines.append(
                f"{name}{_labels_text({'event': etype})} "
                f"{tracer.counts[etype]}"
            )
    return "\n".join(lines) + ("\n" if lines else "")
