"""Exporters: JSONL trace files and Prometheus-style text exposition.

Formats:

* **JSONL trace** — one :class:`~repro.obs.trace.TraceEvent` per line as
  a JSON object; round-trips exactly through
  :func:`write_trace_jsonl` / :func:`read_trace_jsonl`.
* **Prometheus text** — counters/gauges verbatim, histograms rendered as
  summaries (``quantile`` labels plus ``_sum``/``_count``), tracer
  lifecycle counts as ``repro_trace_events_total{event=...}``.
"""

from __future__ import annotations

import json
from typing import Dict, IO, Iterable, List, Optional

from repro.obs.metrics import Counter, Gauge, MetricsRegistry
from repro.obs.trace import TraceEvent, Tracer
from repro.perf.histogram import LogHistogram

# ------------------------------------------------------------- JSONL trace


class JsonlTraceSink:
    """A tracer sink that streams each sampled event to a JSONL file.

    >>> sink = JsonlTraceSink(open("trace.jsonl", "w"))
    >>> tracer.add_sink(sink)
    ...
    >>> sink.close()
    """

    def __init__(self, fp: IO[str]):
        self._fp = fp

    def __call__(self, event: TraceEvent) -> None:
        self._fp.write(json.dumps(event.to_dict(), sort_keys=True) + "\n")

    def close(self) -> None:
        self._fp.close()


def write_trace_jsonl(events: Iterable[TraceEvent], path: str) -> int:
    """Write ``events`` to ``path`` as JSONL; returns the event count."""
    n = 0
    with open(path, "w") as fp:
        sink = JsonlTraceSink(fp)
        for event in events:
            sink(event)
            n += 1
    return n


def read_trace_jsonl(path: str) -> List[TraceEvent]:
    """Parse a JSONL trace file back into :class:`TraceEvent` records."""
    events: List[TraceEvent] = []
    with open(path) as fp:
        for line in fp:
            line = line.strip()
            if line:
                events.append(TraceEvent.from_dict(json.loads(line)))
    return events


def trace_summary(events: Iterable[TraceEvent]) -> Dict[str, dict]:
    """Aggregate a trace per event type: count, keys, cost, indexes.

    Computed from the *records* (not the tracer's exact counters), so a
    summary of events written to JSONL and a summary of the parsed file
    are identical — the round-trip contract the tests pin.
    """
    out: Dict[str, dict] = {}
    for event in events:
        agg = out.get(event.etype)
        if agg is None:
            agg = out[event.etype] = {
                "events": 0,
                "keys": 0,
                "count": 0,
                "cost_ns": 0.0,
                "by_index": {},
            }
        agg["events"] += 1
        agg["keys"] += event.keys
        agg["count"] += event.count
        agg["cost_ns"] += event.cost_ns
        by_index = agg["by_index"]
        by_index[event.index] = by_index.get(event.index, 0) + 1
    return out


# ------------------------------------------------- Prometheus exposition

#: Quantiles a histogram family exposes in the text format.
SUMMARY_QUANTILES = (0.5, 0.99, 0.999)


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"')


def _labels_text(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{k}="{_escape(v)}"' for k, v in sorted(labels.items())
    )
    return "{" + inner + "}"


def _fmt(value: float) -> str:
    return repr(value) if isinstance(value, float) else str(value)


def prometheus_text(
    registry: Optional[MetricsRegistry] = None,
    tracer: Optional[Tracer] = None,
) -> str:
    """Render metrics (and tracer lifecycle counts) as Prometheus text."""
    lines: List[str] = []
    seen_types = set()
    if registry is not None:
        for name, kind, labels, instrument in registry.collect():
            if name not in seen_types:
                seen_types.add(name)
                prom_kind = "summary" if kind == "histogram" else kind
                lines.append(f"# TYPE {name} {prom_kind}")
            if isinstance(instrument, (Counter, Gauge)):
                lines.append(f"{name}{_labels_text(labels)} {_fmt(instrument.value)}")
            elif isinstance(instrument, LogHistogram):
                for q in SUMMARY_QUANTILES:
                    labelled = dict(labels, quantile=str(q))
                    value = instrument.quantile(q) if len(instrument) else "NaN"
                    lines.append(f"{name}{_labels_text(labelled)} {_fmt(value)}")
                lines.append(
                    f"{name}_sum{_labels_text(labels)} {_fmt(instrument.total)}"
                )
                lines.append(
                    f"{name}_count{_labels_text(labels)} {instrument.count}"
                )
    if tracer is not None:
        name = "repro_trace_events_total"
        lines.append(f"# TYPE {name} counter")
        for etype in sorted(tracer.counts):
            lines.append(
                f'{name}{{event="{etype}"}} {tracer.counts[etype]}'
            )
    return "\n".join(lines) + ("\n" if lines else "")
