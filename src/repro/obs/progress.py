"""Live progress/throughput reporting for long benchmark runs.

``execute_ops`` over a six-figure op stream is silent for minutes; the
reporter prints periodic ``done/total`` lines with simulated throughput
and wall-clock rate so a run's health is visible while it happens.

On a TTY the line rewrites in place (carriage return); piped to a file
or CI log each update is its own line.  Output goes to ``stderr`` so it
never pollutes a redirected report.
"""

from __future__ import annotations

import sys
import time
from typing import IO, Optional

from repro.perf.context import PerfContext


class ProgressReporter:
    """Throttled progress lines: one every ``every`` completed ops."""

    def __init__(
        self,
        total: Optional[int] = None,
        every: int = 10_000,
        stream: Optional[IO[str]] = None,
        label: str = "ops",
    ):
        if every < 1:
            raise ValueError(f"every must be >= 1, got {every}")
        self.total = total
        self.every = every
        self.label = label
        self.stream = stream if stream is not None else sys.stderr
        self._inplace = bool(getattr(self.stream, "isatty", lambda: False)())
        self._last_reported = 0
        self._t0: Optional[float] = None
        self._lines = 0

    def _line(self, done: int, perf: PerfContext) -> str:
        parts = [f"{self.label}: {done:,}"]
        if self.total:
            parts[0] += f"/{self.total:,} ({done / self.total:.0%})"
        sim_ns = perf.elapsed_ns()
        if sim_ns > 0:
            parts.append(f"sim {done / sim_ns * 1e3:.3f} Mops/s")
        if self._t0 is not None:
            wall = time.monotonic() - self._t0
            if wall > 0 and done > 0:
                rate = done / wall
                parts.append(f"wall {rate:,.0f} op/s")
                if self.total and done < self.total:
                    parts.append(f"eta {_fmt_eta((self.total - done) / rate)}")
        return "  ".join(parts)

    def maybe(self, done: int, perf: PerfContext) -> None:
        """Report if at least ``every`` ops completed since the last line."""
        if self._t0 is None:
            self._t0 = time.monotonic()
        if done - self._last_reported < self.every:
            return
        self._last_reported = done
        self._lines += 1
        end = "\r" if self._inplace else "\n"
        self.stream.write(self._line(done, perf) + end)
        self.stream.flush()

    def finish(self, done: int, perf: PerfContext) -> None:
        """Write the final line (always, regardless of throttling)."""
        if self._t0 is None:
            self._t0 = time.monotonic()
        self.stream.write(self._line(done, perf) + " done\n")
        self.stream.flush()


def _fmt_eta(seconds: float) -> str:
    """Compact ETA: ``42s``, ``3m10s``, ``2h05m``."""
    seconds = max(0.0, seconds)
    if seconds < 100:
        return f"{seconds:.0f}s"
    minutes, secs = divmod(int(seconds), 60)
    if minutes < 100:
        return f"{minutes}m{secs:02d}s"
    hours, mins = divmod(minutes, 60)
    return f"{hours}h{mins:02d}m"


class EngineTopView(ProgressReporter):
    """``repro top``-style live line for a parallel engine run.

    Extends the progress line with the engine's worker health: per-worker
    ``done`` command counts (stalled workers flagged ``!``), the busiest
    worker's utilization share, and the stall count — a one-line ``top``
    for the serving pool, driven through the same ``maybe``/``finish``
    hooks ``execute_ops`` already calls.
    """

    def __init__(self, engine, **kwargs):
        kwargs.setdefault("label", "serve")
        super().__init__(**kwargs)
        self.engine = engine

    def _line(self, done: int, perf: PerfContext) -> str:
        line = super()._line(done, perf)
        health = getattr(self.engine, "health", None)
        if health is None:
            return line
        cells = []
        stalls = 0
        for wh in health.workers:
            flag = "!" if wh.stalled else ""
            cells.append(f"w{wh.worker_id}:{wh.cmds_done}{flag}")
            stalls += wh.stalls
        util = self.engine.worker_utilization()
        hot = max(util) if util else 0.0
        line += f"  [{' '.join(cells)}] hot {hot:.0%}"
        if stalls:
            line += f" stalls {stalls}"
        return line
