"""Live progress/throughput reporting for long benchmark runs.

``execute_ops`` over a six-figure op stream is silent for minutes; the
reporter prints periodic ``done/total`` lines with simulated throughput
and wall-clock rate so a run's health is visible while it happens.

On a TTY the line rewrites in place (carriage return); piped to a file
or CI log each update is its own line.  Output goes to ``stderr`` so it
never pollutes a redirected report.
"""

from __future__ import annotations

import sys
import time
from typing import IO, Optional

from repro.perf.context import PerfContext


class ProgressReporter:
    """Throttled progress lines: one every ``every`` completed ops."""

    def __init__(
        self,
        total: Optional[int] = None,
        every: int = 10_000,
        stream: Optional[IO[str]] = None,
        label: str = "ops",
    ):
        if every < 1:
            raise ValueError(f"every must be >= 1, got {every}")
        self.total = total
        self.every = every
        self.label = label
        self.stream = stream if stream is not None else sys.stderr
        self._inplace = bool(getattr(self.stream, "isatty", lambda: False)())
        self._last_reported = 0
        self._t0: Optional[float] = None
        self._lines = 0

    def _line(self, done: int, perf: PerfContext) -> str:
        parts = [f"{self.label}: {done:,}"]
        if self.total:
            parts[0] += f"/{self.total:,} ({done / self.total:.0%})"
        sim_ns = perf.elapsed_ns()
        if sim_ns > 0:
            parts.append(f"sim {done / sim_ns * 1e3:.3f} Mops/s")
        if self._t0 is not None:
            wall = time.monotonic() - self._t0
            if wall > 0:
                parts.append(f"wall {done / wall:,.0f} op/s")
        return "  ".join(parts)

    def maybe(self, done: int, perf: PerfContext) -> None:
        """Report if at least ``every`` ops completed since the last line."""
        if self._t0 is None:
            self._t0 = time.monotonic()
        if done - self._last_reported < self.every:
            return
        self._last_reported = done
        self._lines += 1
        end = "\r" if self._inplace else "\n"
        self.stream.write(self._line(done, perf) + end)
        self.stream.flush()

    def finish(self, done: int, perf: PerfContext) -> None:
        """Write the final line (always, regardless of throttling)."""
        if self._t0 is None:
            self._t0 = time.monotonic()
        self.stream.write(self._line(done, perf) + " done\n")
        self.stream.flush()
