"""Tail-latency attribution over causal span trees.

Aggregate throughput hides *why* the slow requests are slow.  Given a
span tree (``request -> batch -> shard -> event``, see
:mod:`repro.obs.spans`), this module decomposes each request's wall
time into additive components and reports them for the slowest
q-quantile of requests:

``queue``
    Request wall time outside any batch: argument staging, scatter
    planning, result gather — everything before the first shipment and
    between shipments.
``serialize``
    Batch wall time beyond the slowest shard in that batch: the
    parent-side cost of pumping N pipes sequentially plus reply
    deserialization.
``skew``
    The slowest shard's excess over the *mean* shard time of its batch:
    time the batch spent waiting on an imbalanced partition.  Perfectly
    balanced shards make this 0.
``struct``
    The portion of mean shard time attributed to structural lifecycle
    events (retrains, latch waits, SMOs), estimated by each shard's
    event-cost share of its worker's simulated time.
``work``
    Mean shard time minus ``struct``: the useful serving work.

The five components sum to the request's wall time by construction, so
the table is an exact decomposition, not a sampling of suspects.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from .spans import Span, children_index, subtree_events

#: Component order used by every table/dict in this module.
COMPONENTS = ("queue", "serialize", "skew", "struct", "work")


@dataclass
class RequestAttribution:
    """One request's wall-time decomposition (all values in ns)."""

    span_id: str
    name: str
    total_ns: float
    queue_ns: float = 0.0
    serialize_ns: float = 0.0
    skew_ns: float = 0.0
    struct_ns: float = 0.0
    work_ns: float = 0.0
    batches: int = 0
    shards: int = 0
    events: int = 0
    #: Per-event-type counts inside this request's subtree.
    event_counts: Dict[str, int] = field(default_factory=dict)

    def components(self) -> Dict[str, float]:
        return {
            "queue": self.queue_ns,
            "serialize": self.serialize_ns,
            "skew": self.skew_ns,
            "struct": self.struct_ns,
            "work": self.work_ns,
        }


@dataclass
class AttributionResult:
    """Attribution for the slowest ``quantile`` fraction of requests."""

    quantile: float
    #: All requests analysed (ascending total_ns).
    requests: List[RequestAttribution]
    #: The slow tail (slowest ``1 - quantile`` fraction), slowest first.
    tail: List[RequestAttribution]

    def tail_totals(self) -> Dict[str, float]:
        """Summed components over the tail (ns)."""
        totals = {c: 0.0 for c in COMPONENTS}
        totals["total"] = 0.0
        for req in self.tail:
            totals["total"] += req.total_ns
            for comp, val in req.components().items():
                totals[comp] += val
        return totals

    def table(self, limit: int = 12) -> str:
        """Render the tail as a text table (slowest request first; at most
        ``limit`` individual rows, always followed by the tail totals)."""
        from ..bench.report import format_table  # deferred: avoid obs<->bench cycle

        headers = [
            "request",
            "total_ms",
            "queue_ms",
            "serialize_ms",
            "skew_ms",
            "struct_ms",
            "work_ms",
            "events",
        ]
        rows = []
        for req in self.tail[:limit]:
            rows.append(
                [
                    f"{req.name} ({req.span_id})",
                    f"{req.total_ns / 1e6:.3f}",
                    f"{req.queue_ns / 1e6:.3f}",
                    f"{req.serialize_ns / 1e6:.3f}",
                    f"{req.skew_ns / 1e6:.3f}",
                    f"{req.struct_ns / 1e6:.3f}",
                    f"{req.work_ns / 1e6:.3f}",
                    str(req.events),
                ]
            )
        if len(self.tail) > limit:
            rows.append(
                [f"... {len(self.tail) - limit} more tail requests"]
                + ["" for _ in headers[1:]]
            )
        totals = self.tail_totals()
        if rows:
            rows.append(
                [
                    f"TAIL p{self.quantile * 100:g}+ ({len(self.tail)} reqs)",
                    f"{totals['total'] / 1e6:.3f}",
                    f"{totals['queue'] / 1e6:.3f}",
                    f"{totals['serialize'] / 1e6:.3f}",
                    f"{totals['skew'] / 1e6:.3f}",
                    f"{totals['struct'] / 1e6:.3f}",
                    f"{totals['work'] / 1e6:.3f}",
                    str(sum(r.events for r in self.tail)),
                ]
            )
        return format_table(headers, rows)


def _struct_fraction(shard: Span, worker_span: Optional[Span], events: List[Span]) -> float:
    """Fraction of ``shard``'s wall time attributable to structural events.

    Estimated from the simulated clock: the worker reports its total
    simulated serving time (``sim_ns``) and every event carries its
    simulated ``cost_ns``; their ratio transfers to wall time.
    """
    if not events:
        return 0.0
    cost = sum(float(e.attrs.get("cost_ns", 0.0) or 0.0) for e in events)
    if cost <= 0.0:
        return 0.0
    sim_ns = 0.0
    if worker_span is not None:
        sim_ns = float(worker_span.attrs.get("sim_ns", 0.0) or 0.0)
    if sim_ns <= 0.0:
        sim_ns = cost  # no worker measurement: events were the whole story
    return min(1.0, cost / sim_ns)


def attribute_request(
    request: Span, index: Dict[Optional[str], List[Span]]
) -> RequestAttribution:
    """Decompose one request span's wall time (see module docstring)."""
    out = RequestAttribution(
        span_id=request.span_id, name=request.name, total_ns=request.dur_ns
    )

    batches = [c for c in index.get(request.span_id, ()) if c.kind == "batch"]
    direct_shards = [c for c in index.get(request.span_id, ()) if c.kind == "shard"]
    # Scalar / broadcast requests ship shards without a batch layer:
    # treat the direct shard children as one implicit batch.
    groups: List[tuple] = [(b, None) for b in batches]
    if direct_shards:
        groups.append((request, direct_shards))

    for parent, shards in groups:
        if shards is None:
            shards = [c for c in index.get(parent.span_id, ()) if c.kind == "shard"]
        batch_dur = parent.dur_ns if parent is not request else (
            max((s.end_ns for s in shards), default=request.start_ns)
            - min((s.start_ns for s in shards), default=request.start_ns)
        )
        if parent is not request:
            out.batches += 1
        if not shards:
            out.work_ns += batch_dur
            continue
        out.shards += len(shards)
        durs = [s.dur_ns for s in shards]
        slowest = max(durs)
        mean = sum(durs) / len(durs)
        out.serialize_ns += max(0.0, batch_dur - slowest)
        out.skew_ns += max(0.0, slowest - mean)
        # Split the mean shard time into structural-event time and work,
        # weighting each shard's contribution by its event-cost share.
        struct = 0.0
        for shard in shards:
            workers = [
                c for c in index.get(shard.span_id, ()) if c.kind == "worker"
            ]
            worker_span = workers[0] if workers else None
            events = subtree_events(shard, index)
            out.events += len(events)
            for ev in events:
                etype = ev.attrs.get("etype", ev.name)
                out.event_counts[etype] = out.event_counts.get(etype, 0) + 1
            struct += (shard.dur_ns / len(shards)) * _struct_fraction(
                shard, worker_span, events
            )
        struct = min(struct, mean)
        out.struct_ns += struct
        out.work_ns += mean - struct

    accounted = out.serialize_ns + out.skew_ns + out.struct_ns + out.work_ns
    out.queue_ns = max(0.0, out.total_ns - accounted)
    return out


def attribute_spans(
    spans: Iterable[Span], quantile: float = 0.9
) -> AttributionResult:
    """Attribute every request span and isolate the slow tail.

    ``quantile`` = 0.9 keeps the slowest 10% of requests in
    :attr:`AttributionResult.tail` (at least one request whenever any
    were recorded).
    """
    if not 0.0 <= quantile < 1.0:
        raise ValueError(f"quantile must be in [0, 1), got {quantile}")
    spans = list(spans)
    index = children_index(spans)
    requests = [s for s in spans if s.kind == "request"]
    attributed = sorted(
        (attribute_request(r, index) for r in requests),
        key=lambda a: a.total_ns,
    )
    if attributed:
        cut = min(int(len(attributed) * quantile), len(attributed) - 1)
        tail = list(reversed(attributed[cut:]))
    else:
        tail = []
    return AttributionResult(quantile=quantile, requests=attributed, tail=tail)
