"""Worker health telemetry for the process-parallel serving engine.

Three mechanisms, all parent-side (a dead worker cannot be asked for a
postmortem, so everything needed for one is recorded before the death):

* **Heartbeats** — every worker reply piggybacks ``(commands served,
  busy wall ns)``; :class:`HealthMonitor` keeps the latest per worker
  plus the wall time of the last reply, so "when did worker 3 last
  answer" is always answerable without extra round trips.
* **Stall detection** — while the parent waits on a reply it ticks
  :meth:`HealthMonitor.waiting`; the first tick past
  ``stall_threshold_s`` marks the in-flight command stalled and counts
  it (once per command).  The engine surfaces the first stall per
  worker as a stderr warning; a stalled worker that eventually replies
  clears back to healthy.
* **Flight recorder** — a bounded ring buffer (``collections.deque``)
  of the last N commands per worker: command name, span id (when the
  request was span-traced), send time, reply wall time, status.  On
  :class:`~repro.errors.WorkerDiedError` the dead worker's ring is
  attached to the exception and formatted into its message — the
  postmortem for "what was it doing when it died".
"""

from __future__ import annotations

import time
from collections import deque
from typing import Callable, Dict, List, Optional

#: Default seconds a single command may stay unanswered before the
#: worker is flagged stalled.  Generous on purpose: bulk builds of large
#: partitions legitimately take seconds.
DEFAULT_STALL_THRESHOLD_S = 5.0

#: Default flight-recorder depth per worker.
DEFAULT_FLIGHT_CAPACITY = 64


class FlightEntry:
    """One command in a worker's flight-recorder ring."""

    __slots__ = ("seq", "cmd", "span_id", "t_send", "wall_ns", "status")

    def __init__(self, seq: int, cmd: str, span_id: Optional[str], t_send: float):
        self.seq = seq
        self.cmd = cmd
        self.span_id = span_id
        self.t_send = t_send
        #: Worker-reported serving wall ns (None until the reply lands).
        self.wall_ns: Optional[float] = None
        self.status = "in-flight"

    def to_dict(self) -> dict:
        return {
            "seq": self.seq,
            "cmd": self.cmd,
            "span_id": self.span_id,
            "t_send": self.t_send,
            "wall_ns": self.wall_ns,
            "status": self.status,
        }

    def __repr__(self) -> str:
        wall = f"{self.wall_ns / 1e6:.2f}ms" if self.wall_ns is not None else "-"
        return f"#{self.seq} {self.cmd} [{self.status}] wall={wall}"


class WorkerHealth:
    """Mutable health snapshot of one worker."""

    __slots__ = (
        "worker_id",
        "cmds_sent",
        "cmds_done",
        "hb_cmds",
        "hb_busy_ns",
        "last_reply_t",
        "stalls",
        "stalled",
        "in_flight",
    )

    def __init__(self, worker_id: int):
        self.worker_id = worker_id
        self.cmds_sent = 0
        self.cmds_done = 0
        #: Latest heartbeat: commands the worker says it has served.
        self.hb_cmds = 0
        #: Latest heartbeat: total worker-side serving wall ns.
        self.hb_busy_ns = 0.0
        self.last_reply_t: Optional[float] = None
        self.stalls = 0
        self.stalled = False
        self.in_flight: Optional[FlightEntry] = None


class HealthMonitor:
    """Per-worker heartbeats, stall detection, and flight recorders.

    ``clock`` is injectable (defaults to ``time.monotonic``) so stall
    logic is testable without sleeping.
    """

    def __init__(
        self,
        workers: int,
        stall_threshold_s: float = DEFAULT_STALL_THRESHOLD_S,
        flight_capacity: int = DEFAULT_FLIGHT_CAPACITY,
        clock: Callable[[], float] = time.monotonic,
    ):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if flight_capacity < 1:
            raise ValueError(
                f"flight_capacity must be >= 1, got {flight_capacity}"
            )
        self.stall_threshold_s = stall_threshold_s
        self.clock = clock
        self.workers: List[WorkerHealth] = [
            WorkerHealth(w) for w in range(workers)
        ]
        self._flights: List["deque[FlightEntry]"] = [
            deque(maxlen=flight_capacity) for _ in range(workers)
        ]
        self._seq = 0

    # -- recording -----------------------------------------------------

    def sent(self, worker: int, cmd: str, span_id: Optional[str] = None) -> None:
        """A command left for ``worker`` (engine ``_send``)."""
        self._seq += 1
        entry = FlightEntry(self._seq, cmd, span_id, self.clock())
        wh = self.workers[worker]
        wh.cmds_sent += 1
        wh.in_flight = entry
        self._flights[worker].append(entry)

    def reply(
        self, worker: int, wall_ns: float, heartbeat: Optional[tuple]
    ) -> None:
        """A reply arrived from ``worker`` with its piggybacked heartbeat."""
        wh = self.workers[worker]
        wh.last_reply_t = self.clock()
        wh.stalled = False
        if heartbeat is not None:
            wh.hb_cmds, wh.hb_busy_ns = heartbeat
        entry = wh.in_flight
        if entry is not None:
            # The build-ready handshake replies without a tracked send;
            # only real commands count as done.
            wh.cmds_done += 1
            entry.wall_ns = wall_ns
            if entry.status == "in-flight":
                entry.status = "ok"
            else:  # was "stalled": keep the mark, note it recovered
                entry.status = "stalled-ok"
            wh.in_flight = None

    def waiting(self, worker: int) -> bool:
        """Tick while blocked on ``worker``; True on the first threshold
        crossing of the current command (the caller may warn once)."""
        wh = self.workers[worker]
        entry = wh.in_flight
        if entry is None or wh.stalled:
            return False
        if self.clock() - entry.t_send >= self.stall_threshold_s:
            wh.stalled = True
            wh.stalls += 1
            entry.status = "stalled"
            return True
        return False

    def died(self, worker: int) -> None:
        """Mark the in-flight command (if any) as the one that killed it."""
        wh = self.workers[worker]
        if wh.in_flight is not None:
            wh.in_flight.status = "died"
            wh.in_flight = None

    def timeout(self, worker: int) -> None:
        """Mark the in-flight command as having overrun its deadline (the
        engine killed the worker; supervision decides what happens next)."""
        wh = self.workers[worker]
        if wh.in_flight is not None:
            wh.in_flight.status = "timeout"
            wh.in_flight = None

    # -- queries -------------------------------------------------------

    def flight(self, worker: int) -> List[FlightEntry]:
        """Snapshot of ``worker``'s flight-recorder ring, oldest first."""
        return list(self._flights[worker])

    def stalled_workers(self) -> List[int]:
        return [wh.worker_id for wh in self.workers if wh.stalled]

    def snapshot(self) -> List[Dict[str, object]]:
        """One dict per worker for tables/telemetry."""
        now = self.clock()
        return [
            {
                "worker": wh.worker_id,
                "cmds_sent": wh.cmds_sent,
                "cmds_done": wh.cmds_done,
                "hb_cmds": wh.hb_cmds,
                "hb_busy_ms": wh.hb_busy_ns / 1e6,
                "last_reply_age_s": (
                    now - wh.last_reply_t if wh.last_reply_t is not None else None
                ),
                "stalls": wh.stalls,
                "stalled": wh.stalled,
            }
            for wh in self.workers
        ]


def format_flight(entries: List[FlightEntry], limit: int = 8) -> str:
    """The last ``limit`` flight entries as indented postmortem lines."""
    tail = entries[-limit:]
    if not tail:
        return "  (flight recorder empty)"
    return "\n".join(f"  {entry!r}" for entry in tail)
