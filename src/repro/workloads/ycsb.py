"""YCSB operation-stream generation (Cooper et al., SoCC'10).

The standard core workloads:

========  =====================================  ==================
Workload  Mix                                    Request distribution
========  =====================================  ==================
A         50% read / 50% update                  zipfian
B         95% read / 5% update                   zipfian
C         100% read                              zipfian
D         95% read / 5% insert, read-latest      latest
E         95% scan / 5% insert                   zipfian
F         50% read / 50% read-modify-write       zipfian
========  =====================================  ==================

plus the paper's read-only and write-only (100% insert) cases.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.errors import InvalidConfigurationError
from repro.workloads.distributions import (
    LatestGenerator,
    ScrambledZipfianGenerator,
    UniformGenerator,
)


class OpKind(enum.Enum):
    READ = "read"
    UPDATE = "update"
    INSERT = "insert"
    SCAN = "scan"
    RMW = "rmw"  # read-modify-write


@dataclass(frozen=True)
class Operation:
    kind: OpKind
    key: int
    scan_length: int = 0


@dataclass(frozen=True)
class WorkloadSpec:
    """Operation mix + request-key distribution."""

    name: str
    read: float = 0.0
    update: float = 0.0
    insert: float = 0.0
    scan: float = 0.0
    rmw: float = 0.0
    distribution: str = "zipfian"  # zipfian | uniform | latest
    scan_length: int = 50

    def __post_init__(self):
        total = self.read + self.update + self.insert + self.scan + self.rmw
        if abs(total - 1.0) > 1e-9:
            raise InvalidConfigurationError(
                f"workload {self.name}: proportions sum to {total}, expected 1.0"
            )
        if self.distribution not in ("zipfian", "uniform", "latest"):
            raise InvalidConfigurationError(
                f"unknown distribution {self.distribution!r}"
            )


YCSB_A = WorkloadSpec("YCSB-A", read=0.5, update=0.5)
YCSB_B = WorkloadSpec("YCSB-B", read=0.95, update=0.05)
YCSB_C = WorkloadSpec("YCSB-C", read=1.0)
YCSB_D = WorkloadSpec("YCSB-D", read=0.95, insert=0.05, distribution="latest")
YCSB_E = WorkloadSpec("YCSB-E", scan=0.95, insert=0.05)
YCSB_F = WorkloadSpec("YCSB-F", read=0.5, rmw=0.5)
READ_ONLY = WorkloadSpec("read-only", read=1.0, distribution="uniform")
WRITE_ONLY = WorkloadSpec("write-only", insert=1.0, distribution="uniform")

STANDARD_WORKLOADS = {
    w.name: w for w in (YCSB_A, YCSB_B, YCSB_C, YCSB_D, YCSB_E, YCSB_F)
}


def generate_operations(
    spec: WorkloadSpec,
    n_ops: int,
    loaded_keys: Sequence[int],
    insert_keys: Optional[Sequence[int]] = None,
    seed: int = 0,
) -> List[Operation]:
    """Materialise ``n_ops`` operations against ``loaded_keys``.

    ``insert_keys`` supplies fresh keys for INSERT ops (must be disjoint
    from ``loaded_keys``); reads under the *latest* distribution favour
    recently inserted keys, as YCSB-D specifies.
    """
    if not loaded_keys:
        raise InvalidConfigurationError("loaded_keys must be non-empty")
    needed_inserts = int(n_ops * spec.insert) + 1
    if spec.insert > 0 and (
        insert_keys is None or len(insert_keys) < needed_inserts
    ):
        raise InvalidConfigurationError(
            f"workload {spec.name} needs >= {needed_inserts} insert keys"
        )

    rng = random.Random(seed)
    n = len(loaded_keys)
    if spec.distribution == "zipfian":
        chooser = ScrambledZipfianGenerator(n, seed=seed)
        pick = chooser.next
    elif spec.distribution == "uniform":
        chooser = UniformGenerator(n, seed=seed)
        pick = chooser.next
    else:  # latest
        latest = LatestGenerator(n, seed=seed)
        pick = latest.next

    # key_ring holds every key the store will contain, in insert order,
    # so 'latest' indexes resolve to real keys.
    key_ring: List[int] = list(loaded_keys)
    inserted = 0
    kinds = (OpKind.READ, OpKind.UPDATE, OpKind.INSERT, OpKind.SCAN, OpKind.RMW)
    weights = (spec.read, spec.update, spec.insert, spec.scan, spec.rmw)
    ops: List[Operation] = []
    for _ in range(n_ops):
        kind = rng.choices(kinds, weights)[0]
        if kind is OpKind.INSERT:
            key = insert_keys[inserted]
            inserted += 1
            key_ring.append(key)
            if spec.distribution == "latest":
                latest.advance()
            ops.append(Operation(kind, key))
        else:
            idx = pick()
            if idx >= len(key_ring):
                idx = len(key_ring) - 1
            key = key_ring[idx]
            if kind is OpKind.SCAN:
                length = rng.randrange(1, spec.scan_length + 1)
                ops.append(Operation(kind, key, length))
            else:
                ops.append(Operation(kind, key))
    return ops


def split_load_and_inserts(
    keys: Sequence[int], load_fraction: float = 0.5, seed: int = 0
) -> Tuple[List[int], List[int]]:
    """Partition a key set into bulk-load keys and future insert keys.

    The load half is returned sorted (bulk-load order); the insert half is
    shuffled (arrival order).
    """
    if not 0.0 < load_fraction <= 1.0:
        raise InvalidConfigurationError("load_fraction must be in (0, 1]")
    rng = random.Random(seed)
    shuffled = list(keys)
    rng.shuffle(shuffled)
    cut = int(len(shuffled) * load_fraction)
    load = sorted(shuffled[:cut])
    inserts = shuffled[cut:]
    return load, inserts
