"""Deterministic dataset synthesizers standing in for the paper's key sets.

The paper loads 8-byte keys from YCSB (normal/uniform/zipfian synthetic),
OSM (OpenStreetMap cell ids), and FACE (Facebook user ids).  The real
traces are not redistributable, so each synthesizer reproduces the CDF
*property* the evaluation depends on:

* :func:`ycsb_keys` — a smooth normal-CDF key set; few PLA segments.
* :func:`osm_keys` — a mixture of hundreds of irregular clusters: a
  "more complex" CDF needing many more segments (the §III-B effect that
  degrades every learned index on OSM).
* :func:`face_keys` — extreme low-range skew: nearly all keys below
  2^50 with a sprinkle reaching 2^64 - 1, which wipes out fixed-prefix
  radix tables (Fig 11).

All functions return sorted, unique Python ints and are deterministic in
``seed``.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.errors import InvalidConfigurationError

_U64_MAX = 2**64 - 1


def _finish(raw: np.ndarray, n: int, seed: int) -> List[int]:
    """Dedup/sort and top up to exactly ``n`` unique keys."""
    keys = np.unique(raw.astype(np.uint64))
    rng = np.random.default_rng(seed + 0xFACE)
    while len(keys) < n:
        extra = rng.integers(0, _U64_MAX, size=(n - len(keys)) * 2, dtype=np.uint64)
        keys = np.unique(np.concatenate([keys, extra]))
    return [int(k) for k in keys[:n]]


def _check_n(n: int) -> None:
    if n < 1:
        raise InvalidConfigurationError(f"n must be >= 1, got {n}")


def ycsb_keys(n: int, seed: int = 0) -> List[int]:
    """Normally-distributed keys centred in the 64-bit space (§III-A3)."""
    _check_n(n)
    rng = np.random.default_rng(seed)
    center = 2.0**62
    sigma = 2.0**59
    raw = rng.normal(center, sigma, size=int(n * 1.05))
    raw = np.clip(raw, 0, _U64_MAX - 1)
    return _finish(raw, n, seed)


def osm_keys(n: int, seed: int = 0) -> List[int]:
    """Keys with a complex, locally jagged CDF (OSM cell-id surrogate).

    Built as a cumulative sum of heavy-tailed gaps: long dense runs broken
    by jumps spanning eight orders of magnitude.  A piecewise-linear
    approximator needs many more segments (or much larger errors) here
    than on the smooth :func:`ycsb_keys` — the property behind §III-B's
    "the CDF of the OSM is more complex" degradation of every learned
    index.
    """
    _check_n(n)
    rng = np.random.default_rng(seed)
    over = int(n * 1.05)
    # Gap magnitudes: log-uniform over [2^4, 2^36), with regime changes
    # every ~thousand keys so density shifts at many scales.
    regimes = rng.uniform(4, 36, size=max(1, over // 1000) + 1)
    regime_of_key = np.repeat(regimes, 1000)[:over]
    jitter = rng.uniform(-3, 3, size=over)
    gaps = np.exp2(regime_of_key + jitter)
    raw = np.cumsum(gaps)
    raw *= (_U64_MAX * 0.9) / raw[-1]
    return _finish(raw, n, seed)


def face_keys(n: int, seed: int = 0, low_fraction: float = 0.999) -> List[int]:
    """Heavily skewed ids: ``low_fraction`` of keys below 2^50, the rest
    spread up to 2^64 - 1 (FACE surrogate; defeats fixed r-bit prefixes)."""
    _check_n(n)
    if not 0.0 < low_fraction < 1.0:
        raise InvalidConfigurationError("low_fraction must be in (0, 1)")
    rng = np.random.default_rng(seed)
    n_high = max(1, n - int(n * low_fraction)) if n > 1 else 0
    n_low = n - n_high
    # Build each stratum to its exact size so sorting + truncation cannot
    # silently drop the high-range outliers.
    low = np.unique(
        rng.integers(0, 2**50, size=int(n_low * 1.1) + 4, dtype=np.uint64)
    )
    while len(low) < n_low:
        extra = rng.integers(0, 2**50, size=n_low, dtype=np.uint64)
        low = np.unique(np.concatenate([low, extra]))
    high = np.unique(
        rng.integers(2**59, _U64_MAX, size=n_high * 2 + 4, dtype=np.uint64)
    )
    while len(high) < n_high:
        extra = rng.integers(2**59, _U64_MAX, size=n_high + 4, dtype=np.uint64)
        high = np.unique(np.concatenate([high, extra]))
    keys = np.concatenate([low[:n_low], high[:n_high]])
    return [int(k) for k in np.sort(keys)]


def uniform_keys(n: int, seed: int = 0) -> List[int]:
    """Uniform keys over the full 64-bit space (easiest possible CDF)."""
    _check_n(n)
    rng = np.random.default_rng(seed)
    raw = rng.integers(0, _U64_MAX, size=int(n * 1.05), dtype=np.uint64)
    return _finish(raw, n, seed)


def sequential_keys(n: int, seed: int = 0, start: int = 1, step: int = 16) -> List[int]:
    """Dense ascending keys (auto-increment ids; trivially linear CDF)."""
    _check_n(n)
    return list(range(start, start + n * step, step))


DATASETS = {
    "ycsb": ycsb_keys,
    "osm": osm_keys,
    "face": face_keys,
    "uniform": uniform_keys,
    "sequential": sequential_keys,
}
