"""Request-key distributions, following the YCSB reference generators.

:class:`ZipfianGenerator` is Gray et al.'s rejection-free algorithm as
implemented in YCSB's ``ZipfianGenerator``; :class:`ScrambledZipfianGenerator`
spreads the popular items across the key space with a 64-bit mix, which is
what YCSB actually uses for request keys.
"""

from __future__ import annotations

import random

from repro.errors import InvalidConfigurationError


def fnv_mix64(value: int) -> int:
    """FNV-1a-style 64-bit scramble used to spread zipfian hot spots."""
    h = 0xCBF29CE484222325
    for _ in range(8):
        h ^= value & 0xFF
        h = (h * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
        value >>= 8
    return h


class UniformGenerator:
    """Uniform over ``[0, n)``."""

    def __init__(self, n: int, seed: int = 0):
        if n < 1:
            raise InvalidConfigurationError("n must be >= 1")
        self.n = n
        self._rng = random.Random(seed)

    def next(self) -> int:
        return self._rng.randrange(self.n)


class ZipfianGenerator:
    """Zipfian over ``[0, n)`` with exponent ``theta`` (YCSB default 0.99).

    Item 0 is the most popular.  Uses the standard closed-form inverse
    with precomputed zeta constants (Gray et al., SIGMOD'94).
    """

    def __init__(self, n: int, theta: float = 0.99, seed: int = 0):
        if n < 1:
            raise InvalidConfigurationError("n must be >= 1")
        if not 0.0 < theta < 1.0:
            raise InvalidConfigurationError("theta must be in (0, 1)")
        self.n = n
        self.theta = theta
        self._rng = random.Random(seed)
        self._zetan = self._zeta(n, theta)
        self._zeta2 = self._zeta(2, theta)
        self._alpha = 1.0 / (1.0 - theta)
        self._eta = (1 - (2.0 / n) ** (1 - theta)) / (1 - self._zeta2 / self._zetan)

    @staticmethod
    def _zeta(n: int, theta: float) -> float:
        # Exact for small n; Euler-Maclaurin tail approximation for large,
        # keeping construction O(1)-ish for the 10^5..10^6 sizes we use.
        cutoff = min(n, 10_000)
        total = sum(1.0 / (i**theta) for i in range(1, cutoff + 1))
        if n > cutoff:
            # integral approximation of the remaining tail
            total += ((n ** (1 - theta)) - (cutoff ** (1 - theta))) / (1 - theta)
        return total

    def next(self) -> int:
        u = self._rng.random()
        uz = u * self._zetan
        if uz < 1.0:
            return 0
        if uz < 1.0 + 0.5**self.theta:
            return 1
        return int(self.n * ((self._eta * u - self._eta + 1) ** self._alpha))

    def sample(self, count: int):
        return [min(self.next(), self.n - 1) for _ in range(count)]


class ScrambledZipfianGenerator:
    """Zipfian ranks scattered uniformly over ``[0, n)`` (YCSB request keys)."""

    def __init__(self, n: int, theta: float = 0.99, seed: int = 0):
        self.n = n
        self._zipf = ZipfianGenerator(n, theta, seed)

    def next(self) -> int:
        return fnv_mix64(self._zipf.next()) % self.n


class LatestGenerator:
    """Skewed toward the most recently inserted item (YCSB-D reads).

    ``advance()`` reflects a new insert; ``next()`` draws an index with
    zipfian weight on the newest items.
    """

    def __init__(self, n: int, theta: float = 0.99, seed: int = 0):
        self._max = n
        self._zipf = ZipfianGenerator(max(n, 1), theta, seed)

    def advance(self) -> None:
        self._max += 1

    def next(self) -> int:
        rank = self._zipf.next() % self._max
        return self._max - 1 - rank
