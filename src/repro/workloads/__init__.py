"""Datasets and workloads (§III-A3).

* :mod:`repro.workloads.distributions` — YCSB's request-key distributions
  (uniform, zipfian, scrambled zipfian, latest).
* :mod:`repro.workloads.datasets` — deterministic synthesizers for the
  paper's key sets: YCSB (normal), OSM-like (complex multi-cluster CDF),
  FACE-like (heavy low-range skew), plus uniform/sequential controls.
* :mod:`repro.workloads.ycsb` — operation-stream generation for the
  standard YCSB mixes (A, B, C, D, E, F) and read-only/write-only cases.
"""

from repro.workloads.datasets import (
    face_keys,
    osm_keys,
    sequential_keys,
    uniform_keys,
    ycsb_keys,
)
from repro.workloads.distributions import (
    LatestGenerator,
    ScrambledZipfianGenerator,
    UniformGenerator,
    ZipfianGenerator,
)
from repro.workloads.ycsb import (
    Operation,
    OpKind,
    WorkloadSpec,
    YCSB_A,
    YCSB_B,
    YCSB_C,
    YCSB_D,
    YCSB_E,
    YCSB_F,
    READ_ONLY,
    WRITE_ONLY,
    generate_operations,
)

__all__ = [
    "face_keys",
    "osm_keys",
    "sequential_keys",
    "uniform_keys",
    "ycsb_keys",
    "LatestGenerator",
    "ScrambledZipfianGenerator",
    "UniformGenerator",
    "ZipfianGenerator",
    "Operation",
    "OpKind",
    "WorkloadSpec",
    "YCSB_A",
    "YCSB_B",
    "YCSB_C",
    "YCSB_D",
    "YCSB_E",
    "YCSB_F",
    "READ_ONLY",
    "WRITE_ONLY",
    "generate_operations",
]
