"""Operation-trace record and replay.

Benchmark reproducibility tooling: a generated operation stream can be
saved to a newline-delimited text file and replayed later (or on another
machine) so two index implementations see byte-identical workloads.

Format — one operation per line::

    read 42
    update 42
    insert 77
    rmw 42
    scan 42 50

A header line (``# repro-trace v1``) guards against feeding arbitrary
files to the replayer.
"""

from __future__ import annotations

import os
from typing import Iterable, Iterator, List

from repro.errors import InvalidConfigurationError
from repro.workloads.ycsb import Operation, OpKind

_HEADER = "# repro-trace v1"


def save_trace(path: str, ops: Iterable[Operation]) -> int:
    """Write operations to ``path``; returns the number written."""
    count = 0
    with open(path, "w") as f:
        f.write(_HEADER + "\n")
        for op in ops:
            if op.kind is OpKind.SCAN:
                f.write(f"{op.kind.value} {op.key} {op.scan_length}\n")
            else:
                f.write(f"{op.kind.value} {op.key}\n")
            count += 1
    return count


def load_trace(path: str) -> List[Operation]:
    """Read a trace written by :func:`save_trace`."""
    if not os.path.exists(path):
        raise InvalidConfigurationError(f"no trace at {path}")
    ops: List[Operation] = []
    with open(path) as f:
        header = f.readline().rstrip("\n")
        if header != _HEADER:
            raise InvalidConfigurationError(
                f"{path} is not a repro trace (header {header!r})"
            )
        for lineno, line in enumerate(f, start=2):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            try:
                kind = OpKind(parts[0])
                key = int(parts[1])
            except (ValueError, IndexError) as exc:
                raise InvalidConfigurationError(
                    f"{path}:{lineno}: bad trace line {line!r}"
                ) from exc
            if kind is OpKind.SCAN:
                if len(parts) != 3:
                    raise InvalidConfigurationError(
                        f"{path}:{lineno}: scan needs a length"
                    )
                ops.append(Operation(kind, key, int(parts[2])))
            else:
                if len(parts) != 2:
                    raise InvalidConfigurationError(
                        f"{path}:{lineno}: unexpected extra fields"
                    )
                ops.append(Operation(kind, key))
    return ops


def iter_trace(path: str) -> Iterator[Operation]:
    """Streaming variant of :func:`load_trace` for very large traces."""
    for op in load_trace(path):
        yield op
