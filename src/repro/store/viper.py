"""Viper-style hybrid PMem-DRAM key-value store (Benson et al., VLDB'21).

Architecture (the paper's Fig 9): a volatile index lives entirely in DRAM
and maps keys to ``(page, slot)`` offsets of records persisted in NVM
VPages.  Puts append to the current page (or reuse a freed slot page),
gets follow the index then read one record from NVM, updates write a new
record and repoint the index.  On a crash the index is gone; recovery
scans the device and rebuilds it — the cost compared across indexes in
Fig 16.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Tuple

from repro.core.interfaces import Index, SortedIndex
from repro.errors import CrashedError, UnsupportedOperationError
from repro.perf.context import PerfContext
from repro.store.pmem import PMemDevice


class ViperStore:
    """DRAM index + NVM value pages."""

    def __init__(
        self,
        index: Index,
        perf: PerfContext,
        record_bytes: int = 208,
        slots_per_page: int = 16,
    ):
        self.index = index
        self.perf = perf
        self.device = PMemDevice(
            record_bytes=record_bytes,
            slots_per_page=slots_per_page,
            perf=perf,
        )
        self._open_page = self.device.allocate_page()
        self._next_slot = 0
        self._free_slots: List[Tuple[int, int]] = []
        self._crashed = False
        self._n = 0

    # -- helpers ------------------------------------------------------------

    def _check_alive(self) -> None:
        if self._crashed:
            raise CrashedError("store crashed; call recover() first")

    def _allocate_slot(self) -> Tuple[int, int]:
        if self._free_slots:
            return self._free_slots.pop()
        if self._next_slot >= self.device.slots_per_page:
            self._open_page = self.device.allocate_page()
            self._next_slot = 0
        slot = (self._open_page, self._next_slot)
        self._next_slot += 1
        return slot

    # -- operations -----------------------------------------------------------

    def bulk_load(self, items: List[Tuple[int, Any]]) -> None:
        """Load sorted unique items: persist records, then build the index."""
        self._check_alive()
        locations = []
        for key, value in items:
            page, slot = self._allocate_slot()
            self.device.write_record(page, slot, key, value)
            locations.append((key, (page, slot)))
        self.index.bulk_load(locations)
        self._n = len(items)

    def put(self, key: int, value: Any) -> None:
        """Insert or update."""
        self._check_alive()
        existing = self.index.get(key)
        page, slot = self._allocate_slot()
        self.device.write_record(page, slot, key, value)
        if existing is not None:
            # Update: repoint the index, free the stale record.  Indexes
            # whose insert is an in-place upsert take the cheap path; the
            # LSM-style PGM overwrites the payload instead of stacking a
            # shadowing duplicate.
            if self.index.insert_is_upsert:
                self.index.insert(key, (page, slot))
            else:
                self.index.update(key, (page, slot))
            self.device.free_record(*existing)
        else:
            self.index.insert(key, (page, slot))
            self._n += 1

    def get(self, key: int) -> Optional[Any]:
        self._check_alive()
        location = self.index.get(key)
        if location is None:
            return None
        _, value = self.device.read_record(*location)
        return value

    def get_many(self, keys: List[int]) -> List[Optional[Any]]:
        """Batch get: one index batch lookup, then per-hit NVM reads."""
        self._check_alive()
        out: List[Optional[Any]] = []
        for location in self.index.get_many(keys):
            if location is None:
                out.append(None)
            else:
                _, value = self.device.read_record(*location)
                out.append(value)
        return out

    def update(self, key: int, value: Any) -> bool:
        self._check_alive()
        if self.index.get(key) is None:
            return False
        self.put(key, value)
        return True

    def delete(self, key: int) -> bool:
        self._check_alive()
        location = self.index.get(key)
        if location is None:
            return False
        try:
            removed = self.index.delete(key)
        except UnsupportedOperationError:
            return False
        if removed:
            self.device.free_record(*location)
            self._free_slots.append(location)
            self._n -= 1
        return removed

    def scan(self, start_key: int, count: int) -> List[Tuple[int, Any]]:
        """Range scan: ordered index walk + NVM record reads."""
        self._check_alive()
        if not isinstance(self.index, SortedIndex):
            raise UnsupportedOperationError(
                f"{self.index.name} cannot serve ordered scans"
            )
        out: List[Tuple[int, Any]] = []
        for key, location in self.index.range(start_key, 2**64 - 1):
            _, value = self.device.read_record(*location)
            out.append((key, value))
            if len(out) >= count:
                break
        return out

    def __len__(self) -> int:
        return self._n

    def __contains__(self, key: int) -> bool:
        return self.index.get(key) is not None

    # -- crash & recovery -----------------------------------------------------

    def crash(self) -> None:
        """Lose all DRAM state; NVM contents survive."""
        self._crashed = True

    def crash_during_put(self, key: int, value: Any) -> None:
        """Simulate power loss in the middle of persisting a put.

        The record's blocks are partially flushed (torn), so its checksum
        cannot verify; recovery must drop it, leaving the key's previous
        state intact — Viper's crash-consistency contract.
        """
        self._check_alive()
        page, slot = self._allocate_slot()
        self.device.write_record_torn(page, slot, key, value)
        self._crashed = True

    def recover(self, index_factory: Callable[[], Index]) -> float:
        """Rebuild the DRAM index from an NVM scan; returns simulated ns.

        The scan yields records in write order; the newest write of each
        key wins (matching Viper's recovery semantics).
        """
        mark = self.perf.begin()
        latest: dict = {}
        max_page = -1
        for page_id, slot, key, _value in self.device.scan_records():
            latest[key] = (page_id, slot)
            max_page = max(max_page, page_id)
        items = sorted(latest.items())
        index = index_factory()
        index.bulk_load(items)
        self.index = index
        self._n = len(items)
        self._crashed = False
        self._free_slots = []
        self._open_page = self.device.allocate_page()
        self._next_slot = 0
        return self.perf.end(mark).time_ns

    # -- accounting (Table III) -------------------------------------------------

    def space_overhead(self) -> dict:
        """The three DRAM-budget scenarios of Table III."""
        index_size = self.index.size_bytes()
        key_size = self.index.key_store_bytes()
        value_size = self._n * (self.device.record_bytes - 8)
        return {
            "index": index_size,
            "index+key": index_size + key_size,
            "index+kv": index_size + key_size + value_size,
        }
