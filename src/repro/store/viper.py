"""Viper-style hybrid PMem-DRAM key-value store (Benson et al., VLDB'21).

Architecture (the paper's Fig 9): a volatile index lives entirely in DRAM
and maps keys to ``(page, slot)`` offsets of records persisted in NVM
VPages.  Puts append to the current page (or reuse a freed slot page),
gets follow the index then read one record from NVM, updates write a new
record and repoint the index.  On a crash the index is gone; recovery
scans the device and rebuilds it — the cost compared across indexes in
Fig 16.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Tuple

from repro.core.interfaces import Index, SortedIndex
from repro.errors import CrashedError, UnsupportedOperationError
from repro.obs.trace import EventType
from repro.perf.context import PerfContext
from repro.store.pmem import PMemDevice


class ViperStore:
    """DRAM index + NVM value pages."""

    def __init__(
        self,
        index: Index,
        perf: PerfContext,
        record_bytes: int = 208,
        slots_per_page: int = 16,
    ):
        self.index = index
        self.perf = perf
        self.device = PMemDevice(
            record_bytes=record_bytes,
            slots_per_page=slots_per_page,
            perf=perf,
        )
        self._open_page = self.device.allocate_page()
        self._next_slot = 0
        self._free_slots: List[Tuple[int, int]] = []
        self._crashed = False
        self._n = 0

    # -- helpers ------------------------------------------------------------

    def _check_alive(self) -> None:
        if self._crashed:
            raise CrashedError("store crashed; call recover() first")

    def _allocate_slot(self) -> Tuple[int, int]:
        if self._free_slots:
            return self._free_slots.pop()
        if self._next_slot >= self.device.slots_per_page:
            self._open_page = self.device.allocate_page()
            self._next_slot = 0
        slot = (self._open_page, self._next_slot)
        self._next_slot += 1
        return slot

    def _allocate_slots(self, n: int) -> List[Tuple[int, int]]:
        """``n`` slot addresses — freed slots first, then the open page,
        then bulk page allocation with one batched ``ALLOC`` charge.  The
        addresses (and event totals) match ``n`` sequential
        :meth:`_allocate_slot` calls."""
        out: List[Tuple[int, int]] = []
        while self._free_slots and len(out) < n:
            out.append(self._free_slots.pop())
        need = n - len(out)
        if need <= 0:
            return out
        spp = self.device.slots_per_page
        take = min(spp - self._next_slot, need)
        if take > 0:
            out.extend(
                (self._open_page, self._next_slot + i) for i in range(take)
            )
            self._next_slot += take
            need -= take
        if need > 0:
            fresh = self.device.allocate_slots(need)
            out.extend(fresh)
            self._open_page, last_slot = fresh[-1]
            self._next_slot = last_slot + 1
        return out

    # -- operations -----------------------------------------------------------

    def bulk_load(self, items: List[Tuple[int, Any]]) -> None:
        """Load sorted unique items: persist records, then build the index.

        Records are placed with one bulk slot allocation and persisted
        with one batched NVM write — the charge totals are identical to
        the per-record path, issued in two calls instead of ``2n``.
        """
        self._check_alive()
        locations = self._allocate_slots(len(items))
        self.device.write_records(
            [
                (page, slot, key, value)
                for (page, slot), (key, value) in zip(locations, items)
            ]
        )
        self.index.bulk_load(
            [(key, loc) for (key, _), loc in zip(items, locations)]
        )
        self._n = len(items)

    def put(self, key: int, value: Any) -> None:
        """Insert or update: persist the record, then one index upsert.

        ``Index.upsert`` resolves the previous record location and
        repoints the index in a single descent (indexes without a native
        single-descent path fall back to probe-then-write internally), so
        a put costs one lookup and one write — not the get *plus* insert
        double traversal it used to."""
        self._check_alive()
        page, slot = self._allocate_slot()
        self.device.write_record(page, slot, key, value)
        old = self.index.upsert(key, (page, slot))
        if old is not None:
            self.device.free_record(*old)
        else:
            self._n += 1

    def put_many(self, items: List[Tuple[int, Any]]) -> None:
        """Batch put, observably equivalent to ``put`` of each item in order.

        The records land via one bulk slot allocation plus one batched
        NVM write.  Indexes with a native ``upsert_many`` resolve each
        old record location in the same descent that repoints the index
        — one traversal per key, like scalar ``put``.  Otherwise one
        ``index.get_many`` probe resolves every pre-existing location and
        the index side is one ``insert_many`` (or, for non-upsert
        indexes, per-occurrence in-place updates).  In-batch duplicates
        chain correctly either way: the second occurrence frees the first
        occurrence's record, and the last value wins.
        """
        self._check_alive()
        if not items:
            return
        if type(self.index).upsert_many is not Index.upsert_many:
            locations = self._allocate_slots(len(items))
            self.device.write_records(
                [
                    (page, slot, key, value)
                    for (page, slot), (key, value) in zip(locations, items)
                ]
            )
            olds = self.index.upsert_many(
                [(key, loc) for (key, _), loc in zip(items, locations)]
            )
            for old in olds:
                if old is not None:
                    self.device.free_record(*old)
                else:
                    self._n += 1
            return
        existing = self.index.get_many([key for key, _ in items])
        locations = self._allocate_slots(len(items))
        self.device.write_records(
            [
                (page, slot, key, value)
                for (page, slot), (key, value) in zip(locations, items)
            ]
        )
        if self.index.insert_is_upsert:
            self.index.insert_many(
                [(key, loc) for (key, _), loc in zip(items, locations)]
            )
            # Resolve frees and live-count against pre-batch state,
            # tracking in-batch duplicates so each write frees its
            # predecessor.
            last_loc: dict = {}
            for (key, _), loc, old in zip(items, locations, existing):
                prev = last_loc.get(key, old)
                if prev is not None:
                    self.device.free_record(*prev)
                else:
                    self._n += 1
                last_loc[key] = loc
            return
        # Non-upsert index (the LSM-style PGM): pre-existing keys take an
        # in-place ``update`` per occurrence (exactly what scalar ``put``
        # does, so level contents stay identical), while fresh keys —
        # where insert and upsert coincide — still go through one
        # ``insert_many`` (which resolves in-batch duplicates last-wins
        # itself).  The two key sets are disjoint, so ordering between
        # them is immaterial.
        fresh_batch: List[Tuple[int, Tuple[int, int]]] = []
        last_loc = {}
        for (key, _), loc, old in zip(items, locations, existing):
            prev = last_loc.get(key, old)
            if old is not None:
                self.index.update(key, loc)
            else:
                fresh_batch.append((key, loc))
            if prev is not None:
                self.device.free_record(*prev)
            else:
                self._n += 1
            last_loc[key] = loc
        if fresh_batch:
            self.index.insert_many(fresh_batch)

    def get(self, key: int) -> Optional[Any]:
        self._check_alive()
        location = self.index.get(key)
        if location is None:
            return None
        _, value = self.device.read_record(*location)
        return value

    def get_many(self, keys: List[int]) -> List[Optional[Any]]:
        """Batch get: one index batch lookup, then per-hit NVM reads."""
        self._check_alive()
        out: List[Optional[Any]] = []
        for location in self.index.get_many(keys):
            if location is None:
                out.append(None)
            else:
                _, value = self.device.read_record(*location)
                out.append(value)
        return out

    def update(self, key: int, value: Any) -> bool:
        self._check_alive()
        if self.index.get(key) is None:
            return False
        self.put(key, value)
        return True

    def delete(self, key: int) -> bool:
        self._check_alive()
        location = self.index.get(key)
        if location is None:
            return False
        try:
            removed = self.index.delete(key)
        except UnsupportedOperationError:
            return False
        if removed:
            self.device.free_record(*location)
            self._free_slots.append(location)
            self._n -= 1
        return removed

    def scan(self, start_key: int, count: int) -> List[Tuple[int, Any]]:
        """Range scan: ordered index walk + NVM record reads."""
        self._check_alive()
        if not isinstance(self.index, SortedIndex):
            raise UnsupportedOperationError(
                f"{self.index.name} cannot serve ordered scans"
            )
        out: List[Tuple[int, Any]] = []
        for key, location in self.index.range(start_key, 2**64 - 1):
            _, value = self.device.read_record(*location)
            out.append((key, value))
            if len(out) >= count:
                break
        return out

    def scan_many(
        self, starts: List[int], count: int
    ) -> List[List[Tuple[int, Any]]]:
        """Batch scan: one index batch scan, then batched NVM record reads.

        The index side goes through ``Index.scan_many`` (bit-identical to
        sequential ``scan`` calls, vectorized where the index has a
        native path) and every hit's record comes back via one
        ``PMemDevice.read_records`` call whose ``NVM_READ`` total matches
        the per-record reads of sequential :meth:`scan` calls.
        """
        self._check_alive()
        if not isinstance(self.index, SortedIndex):
            raise UnsupportedOperationError(
                f"{self.index.name} cannot serve ordered scans"
            )
        runs = self.index.scan_many(starts, count)
        records = self.device.read_records(
            [location for run in runs for _, location in run]
        )
        out: List[List[Tuple[int, Any]]] = []
        i = 0
        for run in runs:
            out.append(
                [(key, records[i + j][1]) for j, (key, _) in enumerate(run)]
            )
            i += len(run)
        return out

    def __len__(self) -> int:
        return self._n

    def __contains__(self, key: int) -> bool:
        return self.index.get(key) is not None

    # -- garbage collection ---------------------------------------------------

    def gc(self) -> int:
        """Reclaim dead NVM slots for reuse; returns slots reclaimed.

        Deletes free their slots into the allocator's free list, but
        :meth:`recover` rebuilds the store with an empty free list — any
        slot freed before a crash becomes unreachable garbage, and
        allocation falls through to fresh pages forever.  The GC pass
        scans per-page occupancy metadata (one sequential ``NVM_READ``
        per page) and returns every dead slot the allocator does not
        already track to the free list.

        Every fully handed-out page's empty slots are dead records; on
        the currently open page only slots below the allocation cursor
        are (the tail has simply never been allocated).
        """
        self._check_alive()
        mark = self.perf.begin()
        tracked = set(self._free_slots)
        reclaimed = 0
        for page_id, _used, empty in self.device.page_occupancy():
            limit = (
                self._next_slot
                if page_id == self._open_page
                else self.device.slots_per_page
            )
            for slot in empty:
                if slot < limit and (page_id, slot) not in tracked:
                    self._free_slots.append((page_id, slot))
                    reclaimed += 1
        op = self.perf.end(mark)
        self.perf.trace(
            EventType.NVM_GC,
            index=f"viper[{self.index.name}]",
            keys=reclaimed,
            count=self.device.page_count,
            reason="slot_reclaim",
            cost_ns=op.time_ns,
        )
        return reclaimed

    # -- crash & recovery -----------------------------------------------------

    def crash(self) -> None:
        """Lose all DRAM state; NVM contents survive."""
        self._crashed = True

    def crash_during_put(self, key: int, value: Any) -> None:
        """Simulate power loss in the middle of persisting a put.

        The record's blocks are partially flushed (torn), so its checksum
        cannot verify; recovery must drop it, leaving the key's previous
        state intact — Viper's crash-consistency contract.
        """
        self._check_alive()
        page, slot = self._allocate_slot()
        self.device.write_record_torn(page, slot, key, value)
        self._crashed = True

    def recover(self, index_factory: Callable[[], Index]) -> float:
        """Rebuild the DRAM index from an NVM scan; returns simulated ns.

        The scan yields records in write order; the newest write of each
        key wins (matching Viper's recovery semantics).
        """
        mark = self.perf.begin()
        latest: dict = {}
        max_page = -1
        for page_id, slot, key, _value in self.device.scan_records():
            latest[key] = (page_id, slot)
            max_page = max(max_page, page_id)
        items = sorted(latest.items())
        index = index_factory()
        index.bulk_load(items)
        self.index = index
        self._n = len(items)
        self._crashed = False
        self._free_slots = []
        self._open_page = self.device.allocate_page()
        self._next_slot = 0
        return self.perf.end(mark).time_ns

    # -- accounting (Table III) -------------------------------------------------

    def space_overhead(self) -> dict:
        """The three DRAM-budget scenarios of Table III."""
        index_size = self.index.size_bytes()
        key_size = self.index.key_store_bytes()
        value_size = self._n * (self.device.record_bytes - 8)
        return {
            "index": index_size,
            "index+key": index_size + key_size,
            "index+kv": index_size + key_size + value_size,
        }
