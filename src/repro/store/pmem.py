"""Simulated Optane persistent memory with page/slot record layout.

Records live in fixed-size slots inside fixed-size pages (Viper's VPage
layout).  Every slot access charges one ``NVM_READ``/``NVM_WRITE`` per
256-byte Optane block the record spans — the paper's platform's real
access granularity (Yang et al., FAST'20).  Contents survive a simulated
crash; only the DRAM-side index is lost.
"""

from __future__ import annotations

import math
from typing import Any, Iterator, List, Optional, Sequence, Tuple

from repro.errors import DeviceError, InvalidConfigurationError
from repro.obs.trace import EventType
from repro.perf.context import DEFAULT_CONTEXT, PerfContext
from repro.perf.events import Event

_BLOCK_BYTES = 256


class _Page:
    __slots__ = ("slots", "used")

    def __init__(self, slots_per_page: int):
        self.slots: List[Optional[Tuple[int, Any]]] = [None] * slots_per_page
        self.used = 0


class PMemDevice:
    """Page-granular simulated NVM device."""

    def __init__(
        self,
        record_bytes: int = 208,  # 8-byte key + 200-byte value (§III-A3)
        slots_per_page: int = 16,
        capacity_pages: Optional[int] = None,
        perf: Optional[PerfContext] = None,
    ):
        if record_bytes < 1:
            raise InvalidConfigurationError("record_bytes must be >= 1")
        if slots_per_page < 1:
            raise InvalidConfigurationError("slots_per_page must be >= 1")
        self.perf = perf if perf is not None else DEFAULT_CONTEXT
        self.record_bytes = record_bytes
        self.slots_per_page = slots_per_page
        self.capacity_pages = capacity_pages
        self._pages: List[_Page] = []
        self._blocks_per_record = max(1, math.ceil(record_bytes / _BLOCK_BYTES))
        # Slots whose last write was interrupted (checksum cannot verify).
        self._torn: set = set()

    # -- allocation ---------------------------------------------------------

    def allocate_page(self) -> int:
        if (
            self.capacity_pages is not None
            and len(self._pages) >= self.capacity_pages
        ):
            raise DeviceError("device full: no pages left")
        self.perf.charge(Event.ALLOC)
        self._pages.append(_Page(self.slots_per_page))
        self.perf.trace(
            EventType.NODE_ALLOC,
            index="pmem",
            leaf=len(self._pages) - 1,
            count=1,
            reason="vpage",
        )
        return len(self._pages) - 1

    def allocate_slots(self, n: int) -> List[Tuple[int, int]]:
        """Allocate ``n`` slots on fresh pages with one batched ALLOC.

        Returns ``n`` ``(page_id, slot)`` addresses — the same addresses
        ``n`` sequential :meth:`allocate_page` + slot-cursor walks would
        produce, with ``ALLOC`` charged once for all
        ``ceil(n / slots_per_page)`` pages instead of per page.  The last
        page may be partially used; the caller owns its remaining slots.
        """
        if n <= 0:
            return []
        pages_needed = -(-n // self.slots_per_page)
        if (
            self.capacity_pages is not None
            and len(self._pages) + pages_needed > self.capacity_pages
        ):
            raise DeviceError("device full: no pages left")
        self.perf.charge(Event.ALLOC, pages_needed)
        first = len(self._pages)
        self._pages.extend(
            _Page(self.slots_per_page) for _ in range(pages_needed)
        )
        self.perf.trace(
            EventType.NODE_ALLOC,
            index="pmem",
            leaf=first,
            count=pages_needed,
            reason="vpage_bulk",
        )
        return [
            (first + i // self.slots_per_page, i % self.slots_per_page)
            for i in range(n)
        ]

    @property
    def page_count(self) -> int:
        return len(self._pages)

    # -- record access ------------------------------------------------------

    def _page(self, page_id: int) -> _Page:
        if not 0 <= page_id < len(self._pages):
            raise DeviceError(f"bad page id {page_id}")
        return self._pages[page_id]

    def write_record(self, page_id: int, slot: int, key: int, value: Any) -> None:
        page = self._page(page_id)
        if not 0 <= slot < self.slots_per_page:
            raise DeviceError(f"bad slot {slot}")
        self.perf.charge(Event.NVM_WRITE, self._blocks_per_record)
        if page.slots[slot] is None:
            page.used += 1
        page.slots[slot] = (key, value)
        self._torn.discard((page_id, slot))

    def write_records(
        self, records: Sequence[Tuple[int, int, int, Any]]
    ) -> None:
        """Persist ``(page_id, slot, key, value)`` records with one batched
        ``NVM_WRITE`` charge covering every record's blocks (the total is
        identical to per-record :meth:`write_record` calls)."""
        if not records:
            return
        for page_id, slot, key, value in records:
            page = self._page(page_id)
            if not 0 <= slot < self.slots_per_page:
                raise DeviceError(f"bad slot {slot}")
            if page.slots[slot] is None:
                page.used += 1
            page.slots[slot] = (key, value)
            self._torn.discard((page_id, slot))
        self.perf.charge(
            Event.NVM_WRITE, self._blocks_per_record * len(records)
        )

    def write_record_torn(
        self, page_id: int, slot: int, key: int, value: Any
    ) -> None:
        """Write a record that a crash interrupted mid-flush.

        Only some of the record's blocks reached the media, so its
        checksum will not verify: reads raise and the recovery scan
        drops it (Viper persists a per-record CRC for exactly this).
        """
        page = self._page(page_id)
        if not 0 <= slot < self.slots_per_page:
            raise DeviceError(f"bad slot {slot}")
        self.perf.charge(Event.NVM_WRITE, max(1, self._blocks_per_record // 2))
        if page.slots[slot] is None:
            page.used += 1
        page.slots[slot] = (key, value)
        self._torn.add((page_id, slot))

    def is_torn(self, page_id: int, slot: int) -> bool:
        return (page_id, slot) in self._torn

    def read_record(self, page_id: int, slot: int) -> Tuple[int, Any]:
        page = self._page(page_id)
        record = page.slots[slot]
        self.perf.charge(Event.NVM_READ, self._blocks_per_record)
        if record is None:
            raise DeviceError(f"empty slot ({page_id}, {slot})")
        if (page_id, slot) in self._torn:
            raise DeviceError(
                f"checksum mismatch at ({page_id}, {slot}): torn write"
            )
        return record

    def read_records(
        self, locations: Sequence[Tuple[int, int]]
    ) -> List[Tuple[int, Any]]:
        """Read ``(page_id, slot)`` records with one batched ``NVM_READ``
        charge covering every record's blocks (the total is identical to
        per-record :meth:`read_record` calls)."""
        if not locations:
            return []
        out: List[Tuple[int, Any]] = []
        self.perf.charge(
            Event.NVM_READ, self._blocks_per_record * len(locations)
        )
        for page_id, slot in locations:
            page = self._page(page_id)
            record = page.slots[slot]
            if record is None:
                raise DeviceError(f"empty slot ({page_id}, {slot})")
            if (page_id, slot) in self._torn:
                raise DeviceError(
                    f"checksum mismatch at ({page_id}, {slot}): torn write"
                )
            out.append(record)
        return out

    def free_record(self, page_id: int, slot: int) -> None:
        page = self._page(page_id)
        if page.slots[slot] is not None:
            self.perf.charge(Event.NVM_WRITE, 1)  # tombstone flag flush
            page.slots[slot] = None
            page.used -= 1
            self._torn.discard((page_id, slot))

    # -- recovery -----------------------------------------------------------

    #: A sequential scan streams at device bandwidth (~39 GB/s for six
    #: Optane DIMMs), so one charged random-read covers this many blocks.
    SEQ_BLOCKS_PER_READ = 32

    def scan_records(self) -> Iterator[Tuple[int, int, int, Any]]:
        """Yield ``(page_id, slot, key, value)`` in write order.

        The recovery scan (Fig 16) is sequential, so it is charged at
        streaming bandwidth — one ``NVM_READ`` per
        :attr:`SEQ_BLOCKS_PER_READ` blocks — rather than per random block.
        """
        pending_blocks = 0
        for page_id, page in enumerate(self._pages):
            for slot, record in enumerate(page.slots):
                if record is not None:
                    pending_blocks += self._blocks_per_record
                    if pending_blocks >= self.SEQ_BLOCKS_PER_READ:
                        self.perf.charge(Event.NVM_READ)
                        pending_blocks -= self.SEQ_BLOCKS_PER_READ
                    if (page_id, slot) in self._torn:
                        continue  # checksum fails: the record never committed
                    yield page_id, slot, record[0], record[1]
        if pending_blocks:
            self.perf.charge(Event.NVM_READ)

    def page_occupancy(self) -> Iterator[Tuple[int, int, List[int]]]:
        """Yield ``(page_id, used, empty_slot_indices)`` per page.

        A slot-bitmap walk, not a record read: charged one sequential
        ``NVM_READ`` per page of metadata — what a GC pass pays to find
        dead slots.
        """
        for page_id, page in enumerate(self._pages):
            self.perf.charge(Event.NVM_READ)
            empty = [
                slot for slot, record in enumerate(page.slots) if record is None
            ]
            yield page_id, page.used, empty

    # -- accounting -----------------------------------------------------------

    def used_bytes(self) -> int:
        return sum(p.used for p in self._pages) * self.record_bytes

    def allocated_bytes(self) -> int:
        return len(self._pages) * self.slots_per_page * self.record_bytes
