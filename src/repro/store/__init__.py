"""The NVM key-value store substrate (§III-A2).

* :class:`PMemDevice` — a simulated byte-addressable persistent-memory
  device with Optane block-granular access costs and crash persistence.
* :class:`ViperStore` — a Viper-style hybrid store: a volatile DRAM index
  (any :class:`repro.core.interfaces.Index`) over records persisted in
  VPages on the device, with crash/recovery support (Fig 16).
"""

from repro.store.pmem import PMemDevice
from repro.store.viper import ViperStore

__all__ = ["PMemDevice", "ViperStore"]
