"""Event-to-nanoseconds cost model.

Default latencies follow published measurements of the paper's platform
(Xeon Gold 6242 + Optane DC PMem, see Yang et al., FAST'20, and the Viper
paper, VLDB'21):

* an uncached DRAM pointer chase costs ~90 ns,
* a cache-resident sequential access costs ~4 ns,
* an Optane 256 B block read costs ~300 ns, a write to the WPQ ~100 ns,
* arithmetic (compares, model evaluations) costs single nanoseconds.

The absolute values only set the simulated clock's scale; the paper-shape
results depend on their *ratios*, which is what the defaults preserve.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.perf.events import Counters, Event


@dataclass(frozen=True)
class CostModel:
    """Per-event latencies in nanoseconds."""

    dram_hop_ns: float = 90.0
    dram_seq_ns: float = 4.0
    compare_ns: float = 1.5
    model_eval_ns: float = 4.0
    key_move_ns: float = 6.0
    hash_ns: float = 12.0
    nvm_read_ns: float = 300.0
    nvm_write_ns: float = 100.0
    alloc_ns: float = 60.0
    retrain_key_ns: float = 14.0
    latch_acquire_ns: float = 20.0
    opt_retry_ns: float = 30.0

    def weights(self) -> dict:
        """Event name -> nanoseconds, aligned with :class:`Event` names."""
        return {
            Event.DRAM_HOP: self.dram_hop_ns,
            Event.DRAM_SEQ: self.dram_seq_ns,
            Event.COMPARE: self.compare_ns,
            Event.MODEL_EVAL: self.model_eval_ns,
            Event.KEY_MOVE: self.key_move_ns,
            Event.HASH: self.hash_ns,
            Event.NVM_READ: self.nvm_read_ns,
            Event.NVM_WRITE: self.nvm_write_ns,
            Event.ALLOC: self.alloc_ns,
            Event.RETRAIN_KEY: self.retrain_key_ns,
            Event.LATCH_ACQUIRE: self.latch_acquire_ns,
            Event.OPT_RETRY: self.opt_retry_ns,
        }

    def time_ns(self, counters: Counters) -> float:
        """Simulated time for a bag of events."""
        w = self.weights()
        return sum(getattr(counters, name) * w[name] for name in Event.ALL)

    def scaled(self, factor: float) -> "CostModel":
        """A cost model with every latency multiplied by ``factor``."""
        return replace(
            self,
            **{
                f.name: getattr(self, f.name) * factor
                for f in self.__dataclass_fields__.values()  # type: ignore[attr-defined]
            },
        )


#: Bytes moved from memory per event, used by the bandwidth contention model.
EVENT_BYTES = {
    Event.DRAM_HOP: 64,
    Event.DRAM_SEQ: 16,
    Event.COMPARE: 0,
    Event.MODEL_EVAL: 0,
    Event.KEY_MOVE: 16,
    Event.HASH: 0,
    Event.NVM_READ: 256,
    Event.NVM_WRITE: 256,
    Event.ALLOC: 64,
    Event.RETRAIN_KEY: 16,
    # The latch word / version stamp lives on one cacheline that bounces
    # between the contending cores.
    Event.LATCH_ACQUIRE: 64,
    Event.OPT_RETRY: 64,
}


def bytes_touched(counters: Counters) -> int:
    """Total bytes of memory traffic implied by a bag of events."""
    return sum(
        getattr(counters, name) * EVENT_BYTES[name] for name in Event.ALL
    )
