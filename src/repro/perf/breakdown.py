"""Per-operation cost breakdown: where do the nanoseconds go?

The paper's analyses constantly attribute performance to specific event
classes ("each level ... causes a cache miss", "much movement of stored
data").  :class:`Profiler` makes that attribution a library feature: wrap
any operation stream, and get (a) the aggregate time split by event kind
and (b) the worst individual operations with their event signatures — the
tool for answering "what is in my p99.9?".
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from repro.perf.context import PerfContext
from repro.perf.events import Counters, Event


@dataclass
class OpProfile:
    """One profiled operation."""

    label: str
    time_ns: float
    counters: Counters
    #: The event kind contributing the most simulated time to this op.
    dominant: str = ""


class Profiler:
    """Collects per-operation costs and attributes them to event kinds.

    >>> profiler = Profiler(perf)
    >>> for key in probes:
    ...     with profiler.operation(f"get {key}"):
    ...         index.get(key)
    >>> profiler.time_by_event()      # {'dram_hop': ..., ...}
    >>> profiler.worst(3)             # the 3 costliest ops, with events
    """

    def __init__(self, perf: PerfContext, keep_worst: int = 16):
        self.perf = perf
        self.keep_worst = keep_worst
        self.total = Counters()
        self.op_count = 0
        self._heap: List[Tuple[float, int, OpProfile]] = []
        self._seq = 0

    # -- recording ------------------------------------------------------

    class _OpContext:
        def __init__(self, profiler: "Profiler", label: str):
            self.profiler = profiler
            self.label = label

        def __enter__(self):
            self.mark = self.profiler.perf.begin()
            return self

        def __exit__(self, exc_type, exc, tb):
            if exc_type is None:
                measured = self.profiler.perf.end(self.mark)
                self.profiler._record(
                    self.label, measured.time_ns, measured.counters
                )
            return False

    def operation(self, label: str = "") -> "_OpContext":
        """Context manager measuring one operation."""
        return self._OpContext(self, label)

    def run(self, label: str, fn: Callable[[], object]) -> object:
        """Measure ``fn()`` as one operation and return its result."""
        with self.operation(label):
            return fn()

    def record_measured(self, label: str, measured, ops: int = 1) -> None:
        """Attribute an already-measured :class:`~repro.perf.context.Operation`.

        This is how the benchmark executor feeds the profiler: it brackets
        each operation itself (for latency recording) and hands the same
        measurement here, so one pass yields both percentiles and the
        event breakdown.

        ``ops > 1`` attributes a batched measurement (one ``get_many`` /
        ``put_many`` call covering a run of workload operations): the
        coarse charge is split evenly across the run, so ``op_count`` and
        the worst-op heap stay in per-operation units instead of one
        batch landing in a single bucket.
        """
        self._record(label, measured.time_ns, measured.counters, ops)

    def absorb(self, counters: Counters, ops: int) -> None:
        """Fold an already-aggregated ledger into the totals.

        Cross-process merge path: the parallel engine's workers profile
        their own command stream and ship ``(total counters, op count)``
        back at drain time.  Only the aggregate side merges — the
        worst-op heap stays local to each profiler, since per-op records
        are not shipped.
        """
        self.total.add(counters)
        self.op_count += ops

    def _record(
        self, label: str, time_ns: float, counters: Counters, ops: int = 1
    ) -> None:
        self.total.add(counters)
        self.op_count += ops
        if ops > 1:
            time_ns /= ops
            counters = counters.copy()
            for name in Event.ALL:
                setattr(counters, name, getattr(counters, name) / ops)
        profile = OpProfile(label, time_ns, counters, self._dominant_of(counters))
        self._seq += 1
        entry = (time_ns, self._seq, profile)
        if len(self._heap) < self.keep_worst:
            heapq.heappush(self._heap, entry)
        elif entry > self._heap[0]:
            heapq.heapreplace(self._heap, entry)

    # -- reporting ----------------------------------------------------------

    def _dominant_of(self, counters: Counters) -> str:
        weights = self.perf.cost_model.weights()
        best, best_ns = "", -1.0
        for name in Event.ALL:
            ns = getattr(counters, name) * weights[name]
            if ns > best_ns:
                best, best_ns = name, ns
        return best

    def time_by_event(self) -> dict:
        """Aggregate simulated nanoseconds attributed to each event kind."""
        weights = self.perf.cost_model.weights()
        return {
            name: getattr(self.total, name) * weights[name]
            for name in Event.ALL
            if getattr(self.total, name)
        }

    def total_time_ns(self) -> float:
        return self.perf.cost_model.time_ns(self.total)

    def mean_time_ns(self) -> float:
        if self.op_count == 0:
            raise ValueError("no operations profiled")
        return self.total_time_ns() / self.op_count

    def worst(self, k: Optional[int] = None) -> List[OpProfile]:
        """The costliest operations, most expensive first."""
        entries = sorted(self._heap, reverse=True)
        if k is not None:
            entries = entries[:k]
        return [profile for _, _, profile in entries]

    def explain(self, top_events: int = 3) -> str:
        """A human-readable summary of where the time went."""
        if self.op_count == 0:
            return "no operations profiled"
        by_event = sorted(
            self.time_by_event().items(), key=lambda kv: -kv[1]
        )[:top_events]
        total = self.total_time_ns()
        parts = [
            f"{name}: {ns / total:.0%} ({ns / self.op_count:.0f} ns/op)"
            for name, ns in by_event
        ]
        lines = [
            f"{self.op_count} ops, {self.mean_time_ns():.0f} ns/op mean",
            "time split: " + ", ".join(parts),
        ]
        worst = self.worst(1)
        if worst:
            w = worst[0]
            lines.append(
                f"worst op: {w.label or '(unlabelled)'} at {w.time_ns:.0f} ns, "
                f"dominated by {w.dominant}"
            )
        return "\n".join(lines)
