"""Hardware event taxonomy charged by index and store implementations.

Each event is a proxy for a micro-architectural cost the paper reasons
about explicitly:

* ``DRAM_HOP`` — a pointer chase to a node that is not in cache (the paper:
  "each level of the internal structure searched down causes a cache miss").
* ``DRAM_SEQ`` — touching an adjacent cache line inside a node that is
  already resident (sequential scan step, slot probe).
* ``COMPARE`` — one key comparison (the dominant cost of comparison-based
  inner structures such as the FITing-tree's B+tree).
* ``MODEL_EVAL`` — evaluating one linear model (fused multiply-add plus a
  clamp), the dominant cost of calculated structures such as PGM's LRS.
* ``KEY_MOVE`` — shifting one stored key/slot during an insert (the cost
  that makes the inplace strategy slow).
* ``HASH`` — one hash computation (CCEH, Wormhole anchors).
* ``NVM_READ`` / ``NVM_WRITE`` — one 256-byte Optane block access.
* ``ALLOC`` — allocating a new node/page.
* ``RETRAIN_KEY`` — refitting one key during a model retrain.
* ``LATCH_ACQUIRE`` — taking one latch/lock (a CAS plus a fence on the
  latch word's cacheline); charged by the concurrency simulator.
* ``OPT_RETRY`` — one failed optimistic-read validation forcing a retry
  (Masstree/Bw-tree style version checks); charged by the simulator.
"""

from __future__ import annotations


class Event:
    """Namespace of event names; values are the keys used in :class:`Counters`."""

    DRAM_HOP = "dram_hop"
    DRAM_SEQ = "dram_seq"
    COMPARE = "compare"
    MODEL_EVAL = "model_eval"
    KEY_MOVE = "key_move"
    HASH = "hash"
    NVM_READ = "nvm_read"
    NVM_WRITE = "nvm_write"
    ALLOC = "alloc"
    RETRAIN_KEY = "retrain_key"
    LATCH_ACQUIRE = "latch_acquire"
    OPT_RETRY = "opt_retry"

    ALL = (
        DRAM_HOP,
        DRAM_SEQ,
        COMPARE,
        MODEL_EVAL,
        KEY_MOVE,
        HASH,
        NVM_READ,
        NVM_WRITE,
        ALLOC,
        RETRAIN_KEY,
        LATCH_ACQUIRE,
        OPT_RETRY,
    )


class Counters:
    """A mutable bag of event counts.

    Implemented with one integer slot per event rather than a dict so that
    the hot ``charge`` path and snapshot deltas stay cheap in CPython.
    """

    __slots__ = tuple(Event.ALL)

    def __init__(self) -> None:
        for name in Event.ALL:
            setattr(self, name, 0)

    def copy(self) -> "Counters":
        out = Counters()
        for name in Event.ALL:
            setattr(out, name, getattr(self, name))
        return out

    def delta(self, earlier: "Counters") -> "Counters":
        """Return a new ``Counters`` holding ``self - earlier`` per event."""
        out = Counters()
        for name in Event.ALL:
            setattr(out, name, getattr(self, name) - getattr(earlier, name))
        return out

    def add(self, other: "Counters") -> None:
        for name in Event.ALL:
            setattr(self, name, getattr(self, name) + getattr(other, name))

    def total(self) -> int:
        return sum(getattr(self, name) for name in Event.ALL)

    def as_dict(self) -> dict:
        return {name: getattr(self, name) for name in Event.ALL}

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Counters):
            return NotImplemented
        return all(
            getattr(self, name) == getattr(other, name) for name in Event.ALL
        )

    def __repr__(self) -> str:
        nonzero = {k: v for k, v in self.as_dict().items() if v}
        return f"Counters({nonzero})"
