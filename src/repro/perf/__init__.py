"""Deterministic performance simulation substrate.

The paper measures C++ indexes on Optane PMem hardware; CPython wall-clock
neither matches those absolute numbers nor preserves the relative costs the
paper's conclusions rest on (cache misses per pointer hop, NVM vs. DRAM
latency, bandwidth saturation).  Instead, every index in this repository
*charges* abstract hardware events (node hops, comparisons, model
evaluations, key moves, NVM block accesses) into a :class:`PerfContext`,
and a calibrated :class:`CostModel` converts event counts into simulated
nanoseconds.  Throughput and tail latency in every benchmark are derived
from this simulated clock, which is deterministic and size-independent.
"""

from repro.perf.events import Event, Counters
from repro.perf.cost_model import CostModel
from repro.perf.context import PerfContext, Operation
from repro.perf.histogram import LogHistogram
from repro.perf.latency import LatencyRecorder
from repro.perf.bandwidth import BandwidthModel
from repro.perf.breakdown import OpProfile, Profiler

__all__ = [
    "Event",
    "Counters",
    "CostModel",
    "PerfContext",
    "Operation",
    "LogHistogram",
    "LatencyRecorder",
    "BandwidthModel",
    "Profiler",
    "OpProfile",
]
