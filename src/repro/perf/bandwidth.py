"""Memory-bandwidth contention model for the multi-threaded figures.

The paper's multi-thread results (Figs 12 and 14) are shaped by one socket's
finite memory bandwidth: "ALEX has already saturated the memory bandwidth
with 24 threads ... which led to the competition of NVM bandwidth".  We model
a shared bandwidth pool: each thread independently demands
``bytes_per_op / base_latency`` of bandwidth; once aggregate demand exceeds
the pool, every access slows by the oversubscription ratio, and queueing
inflates the tail.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class BandwidthModel:
    """One socket's memory subsystem.

    ``peak_gbps`` defaults to an *effective* single-socket budget of
    ~25 GB/s for the store's mixed traffic: random 256-byte Optane reads
    sustain only ~2.3 GB/s per DIMM (~14 GB/s for six DIMMs; Yang et
    al., FAST'20), blended with the DRAM share of each operation.  This
    is the pool the paper reports ALEX exhausting at 24 threads.
    ``tail_queue_factor`` controls how much faster the p99.9 grows than the
    mean once the pool saturates.
    """

    peak_gbps: float = 25.0
    tail_queue_factor: float = 3.0

    def demand_gbps(self, threads: int, bytes_per_op: float, base_ns: float) -> float:
        """Aggregate bandwidth demanded by ``threads`` unthrottled threads."""
        if threads < 1:
            raise ValueError("threads must be >= 1")
        if base_ns <= 0:
            raise ValueError("base_ns must be positive")
        per_thread = bytes_per_op / base_ns  # bytes/ns == GB/s
        return threads * per_thread

    def slowdown(self, threads: int, bytes_per_op: float, base_ns: float) -> float:
        """Multiplicative per-op slowdown; >= 1, monotonic in ``threads``."""
        demand = self.demand_gbps(threads, bytes_per_op, base_ns)
        if demand <= self.peak_gbps:
            return 1.0
        return demand / self.peak_gbps

    def throughput_mops(
        self, threads: int, bytes_per_op: float, base_ns: float
    ) -> float:
        """Aggregate Mops/s of ``threads`` threads doing ``base_ns`` ops."""
        s = self.slowdown(threads, bytes_per_op, base_ns)
        return threads / (base_ns * s) * 1e3

    def tail_latency_ns(
        self, threads: int, bytes_per_op: float, base_ns: float, base_tail_ns: float
    ) -> float:
        """Scaled p99.9: queueing inflates the tail beyond the mean slowdown."""
        s = self.slowdown(threads, bytes_per_op, base_ns)
        if s <= 1.0:
            return base_tail_ns
        return base_tail_ns * (1.0 + (s - 1.0) * self.tail_queue_factor)
