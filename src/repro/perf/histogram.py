"""Log-bucketed histogram: O(1) record, bounded-relative-error quantiles.

The sort-per-call percentile path in :mod:`repro.perf.latency` costs
``O(n log n)`` on every report; serving stacks instead bucket samples on
a logarithmic grid (HdrHistogram, Prometheus, DDSketch) so recording is a
dict increment and any quantile is one pass over the occupied buckets.

Bucketing uses :func:`math.frexp`, which decomposes ``v = m * 2**e``
exactly — no ``log()`` rounding at bucket edges.  Each power-of-two range
``[2**(e-1), 2**e)`` is divided into :data:`LogHistogram.SUBBUCKETS`
linear sub-buckets, so any reported quantile is the upper edge of the
bucket holding the nearest-rank sample and overestimates it by at most
``1/SUBBUCKETS`` (:data:`LogHistogram.RELATIVE_ERROR`) relative, while
``min``/``max``/``mean`` stay exact.
"""

from __future__ import annotations

import math
from typing import Dict, Iterator, List, Tuple

#: Bucket id reserved for values <= 0 (simulated latencies are >= 0, but
#: a zero-cost op must still count).  Sorts below every real bucket.
_ZERO_BUCKET = -(1 << 40)


class LogHistogram:
    """Sparse log-bucketed histogram over positive floats."""

    #: Linear sub-buckets per power-of-two range; the relative-error knob.
    SUBBUCKETS = 128
    #: Worst-case relative overestimate of any quantile.
    RELATIVE_ERROR = 1.0 / SUBBUCKETS

    __slots__ = ("_buckets", "_count", "_total", "_min", "_max", "_sorted", "_dirty")

    def __init__(self) -> None:
        self._buckets: Dict[int, int] = {}
        self._count = 0
        self._total = 0.0
        self._min = math.inf
        self._max = -math.inf
        self._sorted: List[int] = []
        self._dirty = False

    # -- bucketing ----------------------------------------------------------

    @classmethod
    def bucket_of(cls, value: float) -> int:
        if value <= 0.0:
            return _ZERO_BUCKET
        m, e = math.frexp(value)  # value = m * 2**e, m in [0.5, 1)
        return e * cls.SUBBUCKETS + int((m * 2.0 - 1.0) * cls.SUBBUCKETS)

    @classmethod
    def bucket_upper(cls, bucket: int) -> float:
        """Exclusive upper edge of ``bucket`` (the value a quantile reports)."""
        if bucket == _ZERO_BUCKET:
            return 0.0
        e, sub = divmod(bucket, cls.SUBBUCKETS)
        return math.ldexp(1.0 + (sub + 1) / cls.SUBBUCKETS, e - 1)

    # -- recording ----------------------------------------------------------

    def record(self, value: float, n: int = 1) -> None:
        b = self.bucket_of(value)
        buckets = self._buckets
        if b in buckets:
            buckets[b] += n
        else:
            buckets[b] = n
            self._dirty = True
        self._count += n
        self._total += value * n
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value

    def merge(self, other: "LogHistogram") -> None:
        """Fold ``other``'s buckets into this histogram."""
        for b, n in other._buckets.items():
            if b in self._buckets:
                self._buckets[b] += n
            else:
                self._buckets[b] = n
                self._dirty = True
        self._count += other._count
        self._total += other._total
        self._min = min(self._min, other._min)
        self._max = max(self._max, other._max)

    # -- summary ------------------------------------------------------------

    def __len__(self) -> int:
        return self._count

    @property
    def count(self) -> int:
        return self._count

    @property
    def total(self) -> float:
        return self._total

    def min(self) -> float:
        if not self._count:
            raise ValueError("empty histogram")
        return self._min

    def max(self) -> float:
        if not self._count:
            raise ValueError("empty histogram")
        return self._max

    def mean(self) -> float:
        if not self._count:
            raise ValueError("empty histogram")
        return self._total / self._count

    def quantile(self, q: float) -> float:
        """Nearest-rank quantile, ``q`` in (0, 1].

        Returns the upper edge of the bucket holding the sample of rank
        ``ceil(q * count)``, clamped to the exact observed ``[min, max]``
        — so ``quantile(1.0)`` is the exact maximum and every other
        quantile overestimates the true sample by at most
        :data:`RELATIVE_ERROR` relative.
        """
        if not self._count:
            raise ValueError("empty histogram")
        if not 0.0 < q <= 1.0:
            raise ValueError(f"quantile must be in (0, 1], got {q}")
        # Round-guard: 0.999 * 1000 is 999.0000000000001 in binary floating
        # point, which must still rank as 999, not 1000.
        rank = max(1, math.ceil(q * self._count - 1e-9))
        if self._dirty:
            self._sorted = sorted(self._buckets)
            self._dirty = False
        seen = 0
        for b in self._sorted:
            seen += self._buckets[b]
            if seen >= rank:
                return min(self._max, max(self._min, self.bucket_upper(b)))
        return self._max  # pragma: no cover - rank <= count always lands

    def buckets(self) -> Iterator[Tuple[float, int]]:
        """``(upper_edge, count)`` pairs in ascending bucket order."""
        if self._dirty:
            self._sorted = sorted(self._buckets)
            self._dirty = False
        for b in self._sorted:
            yield self.bucket_upper(b), self._buckets[b]
