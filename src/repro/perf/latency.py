"""Latency collection and summary statistics on a histogram backend.

Percentiles used to sort the full sample list on every call; the
recorder now feeds a :class:`~repro.perf.histogram.LogHistogram`, so
recording stays O(1), summaries need no sort, and memory is bounded by
the number of occupied buckets rather than the number of operations.
``count``/``mean``/``max``/``total_time_ns`` are exact; any percentile
overestimates the true nearest-rank sample by at most
``LogHistogram.RELATIVE_ERROR`` (1/128 ≈ 0.8%) relative — far below the
run-to-run spread of any real measurement, and deterministic for the
simulated clock.
"""

from __future__ import annotations

from typing import Iterable

from repro.perf.histogram import LogHistogram


class LatencyRecorder:
    """Collects per-operation simulated latencies (ns) and summarises them.

    Percentiles report the nearest-rank method (what the paper's 99.9%
    tail figures use) evaluated over the histogram's log buckets; see
    the module docstring for the error bound.
    """

    def __init__(self) -> None:
        self._hist = LogHistogram()

    @property
    def histogram(self) -> LogHistogram:
        """The backing histogram (for metrics export / merging)."""
        return self._hist

    def record(self, latency_ns: float) -> None:
        self._hist.record(latency_ns)

    def extend(self, latencies_ns: Iterable[float]) -> None:
        for latency in latencies_ns:
            self._hist.record(latency)

    def merge(self, other: "LatencyRecorder") -> None:
        self._hist.merge(other._hist)

    def __len__(self) -> int:
        return self._hist.count

    def percentile(self, p: float) -> float:
        """Nearest-rank percentile, ``p`` in (0, 100].

        Compatibility wrapper over the histogram backend: same signature
        and ``ValueError`` behaviour as the original sort-based method.
        """
        if not len(self._hist):
            raise ValueError("no latency samples recorded")
        if not 0.0 < p <= 100.0:
            raise ValueError(f"percentile must be in (0, 100], got {p}")
        return self._hist.quantile(p / 100.0)

    def p50(self) -> float:
        return self.percentile(50.0)

    def p99(self) -> float:
        return self.percentile(99.0)

    def p999(self) -> float:
        return self.percentile(99.9)

    def mean(self) -> float:
        if not len(self._hist):
            raise ValueError("no latency samples recorded")
        return self._hist.mean()

    def max(self) -> float:
        if not len(self._hist):
            raise ValueError("no latency samples recorded")
        return self._hist.max()

    def total_time_ns(self) -> float:
        return self._hist.total

    def throughput_mops(self) -> float:
        """Million operations per simulated second."""
        total = self.total_time_ns()
        if total <= 0:
            raise ValueError("total simulated time is zero")
        return len(self._hist) / total * 1e3
