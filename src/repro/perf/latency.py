"""Latency sample collection and summary statistics."""

from __future__ import annotations

import math
from typing import Iterable, List


class LatencyRecorder:
    """Collects per-operation simulated latencies (ns) and summarises them.

    Percentiles use the nearest-rank method on the sorted sample, which is
    what latency-measurement harnesses (and the paper's 99.9% tail figures)
    conventionally report.
    """

    def __init__(self) -> None:
        self._samples: List[float] = []
        self._sorted = False

    def record(self, latency_ns: float) -> None:
        self._samples.append(latency_ns)
        self._sorted = False

    def extend(self, latencies_ns: Iterable[float]) -> None:
        self._samples.extend(latencies_ns)
        self._sorted = False

    def __len__(self) -> int:
        return len(self._samples)

    def _ensure_sorted(self) -> None:
        if not self._sorted:
            self._samples.sort()
            self._sorted = True

    def percentile(self, p: float) -> float:
        """Nearest-rank percentile, ``p`` in (0, 100]."""
        if not self._samples:
            raise ValueError("no latency samples recorded")
        if not 0.0 < p <= 100.0:
            raise ValueError(f"percentile must be in (0, 100], got {p}")
        self._ensure_sorted()
        # Round-guard: 0.999 * 1000 is 999.0000000000001 in binary floating
        # point, which must still rank as 999, not 1000.
        rank = max(1, math.ceil(p / 100.0 * len(self._samples) - 1e-9))
        return self._samples[rank - 1]

    def p50(self) -> float:
        return self.percentile(50.0)

    def p99(self) -> float:
        return self.percentile(99.0)

    def p999(self) -> float:
        return self.percentile(99.9)

    def mean(self) -> float:
        if not self._samples:
            raise ValueError("no latency samples recorded")
        return sum(self._samples) / len(self._samples)

    def max(self) -> float:
        if not self._samples:
            raise ValueError("no latency samples recorded")
        self._ensure_sorted()
        return self._samples[-1]

    def total_time_ns(self) -> float:
        return sum(self._samples)

    def throughput_mops(self) -> float:
        """Million operations per simulated second."""
        total = self.total_time_ns()
        if total <= 0:
            raise ValueError("total simulated time is zero")
        return len(self._samples) / total * 1e3
