"""The perf context: where indexes charge events and ops are measured."""

from __future__ import annotations

from typing import Optional

from repro.perf.cost_model import CostModel, bytes_touched
from repro.perf.events import Counters, Event

#: Keys per cache line (8-byte keys, 64-byte lines); probes that jump
#: further than two lines from the previous probe are charged as cache
#: misses rather than sequential accesses.
PROBE_LOCALITY_KEYS = 16


def charge_probe(perf: "PerfContext", distance: int) -> None:
    """Charge one search probe at ``distance`` keys from the previous one.

    Binary-search probes over a wide span land on unrelated cache lines
    (a miss each); within a couple of lines they are effectively
    sequential.  This is what makes an unbounded prediction error
    expensive in the tail: the first log2(error/16) probes of the
    correction search all miss.
    """
    if distance > PROBE_LOCALITY_KEYS or distance < -PROBE_LOCALITY_KEYS:
        perf.charge(Event.DRAM_HOP)
    else:
        perf.charge(Event.DRAM_SEQ)


class Operation:
    """Measurement of a single operation: event delta, time, bytes."""

    __slots__ = ("counters", "time_ns", "bytes")

    def __init__(self, counters: Counters, time_ns: float, nbytes: int):
        self.counters = counters
        self.time_ns = time_ns
        self.bytes = nbytes

    def __repr__(self) -> str:
        return f"Operation(time_ns={self.time_ns:.1f}, bytes={self.bytes})"


class PerfContext:
    """Shared event ledger + simulated clock for one experiment.

    Indexes receive a ``PerfContext`` at construction and call
    :meth:`charge` on their hot paths.  Benchmark runners bracket each
    operation with :meth:`begin` / :meth:`end` to obtain per-operation
    simulated latencies, from which throughput and tail percentiles are
    computed.
    """

    def __init__(self, cost_model: Optional[CostModel] = None):
        self.cost_model = cost_model or CostModel()
        self.counters = Counters()
        self._mark: Optional[Counters] = None
        #: Optional lifecycle-event tracer (see :mod:`repro.obs.trace`).
        #: ``None`` by default so instrumented code pays one attribute
        #: load and a falsy check when tracing is off.
        self.tracer = None

    # -- charging -----------------------------------------------------

    def charge(self, event: str, n: int = 1) -> None:
        """Record ``n`` occurrences of ``event`` (an :class:`Event` name)."""
        setattr(self.counters, event, getattr(self.counters, event) + n)

    # -- lifecycle tracing --------------------------------------------

    def trace(self, etype: str, **fields) -> None:
        """Emit a lifecycle event to the attached tracer, if any.

        Instrumentation sites call this unconditionally; with no tracer
        attached it is a no-op.  The event is timestamped with the
        simulated clock (:meth:`elapsed_ns`) at emission.
        """
        tracer = self.tracer
        if tracer is not None:
            tracer.emit(etype, self.elapsed_ns(), **fields)

    # -- measurement --------------------------------------------------

    def begin(self) -> Counters:
        """Snapshot the ledger; pass the result to :meth:`end`."""
        return self.counters.copy()

    def end(self, mark: Counters) -> Operation:
        """Finish a measurement started at ``mark``."""
        delta = self.counters.delta(mark)
        return Operation(delta, self.cost_model.time_ns(delta), bytes_touched(delta))

    def elapsed_ns(self) -> float:
        """Total simulated time accumulated since construction/reset."""
        return self.cost_model.time_ns(self.counters)

    def total_bytes(self) -> int:
        return bytes_touched(self.counters)

    def reset(self) -> None:
        self.counters = Counters()


def merged_counters(contexts: "list[PerfContext]") -> Counters:
    """One ledger summing every context's events (sharded aggregates)."""
    out = Counters()
    for ctx in contexts:
        out.add(ctx.counters)
    return out


def merged_elapsed_ns(
    contexts: "list[PerfContext]", parallel: bool = True
) -> float:
    """Combine per-shard simulated clocks into one experiment clock.

    ``parallel=True`` models shards executing concurrently (one worker
    per shard): the experiment finishes when the *slowest* shard does,
    so the merged clock is the max.  ``parallel=False`` models shards
    sharing one worker: clocks add.
    """
    clocks = [ctx.elapsed_ns() for ctx in contexts]
    if not clocks:
        return 0.0
    return max(clocks) if parallel else sum(clocks)


#: A context used by indexes constructed without an explicit one.  It still
#: counts (so standalone usage works), but experiments should always pass
#: their own context to keep measurements isolated.
DEFAULT_CONTEXT = PerfContext()
